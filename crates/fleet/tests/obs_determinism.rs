//! The observability determinism contract: the `--obs-out` time series,
//! the wave health rows, and the watchdog report are keyed on wave index
//! only, so they are byte-identical at any worker-pool width.

use ace_fleet::{
    fleet_registry_version, run_fleet_observed, FleetConfig, ObsGate, ObsSampler, TuningStore,
};
use ace_telemetry::{write_obs_jsonl, Telemetry};

fn test_config() -> FleetConfig {
    let mut cfg = FleetConfig::preset("smoke").expect("smoke preset");
    cfg.machines = 8;
    cfg.wave_size = 4;
    cfg.admit_limit = 4;
    cfg.measure_baseline = false;
    cfg.instruction_limit = 200_000;
    cfg
}

/// Runs a cold + warm pass with samplers attached and returns the
/// serialized obs stream plus the watchdog reports. `lanes` picks the
/// lane-batched stepping width; the config doubles up presets so waves
/// contain same-preset machines and preset-affine lane groups actually
/// form (with the smoke preset's 7-way cycle every bucket would be a
/// singleton at this wave size).
fn observed_run(jobs: usize, lanes: usize) -> (Vec<u8>, String, String) {
    let mut cfg = test_config();
    cfg.presets = vec!["db".into(), "jess".into()];
    cfg.lanes = lanes;
    let tel = Telemetry::counting();
    let mut store = TuningStore::in_memory(fleet_registry_version(), TuningStore::DEFAULT_CAPACITY);
    let mut cold_obs = ObsSampler::new("cold");
    let mut warm_obs = ObsSampler::new("warm");
    run_fleet_observed(&cfg, &mut store, jobs, &tel, Some(&mut cold_obs)).expect("cold pass");
    run_fleet_observed(&cfg, &mut store, jobs, &tel, Some(&mut warm_obs)).expect("warm pass");

    let gate = ObsGate::default();
    let cold_report = gate.check("cold", cold_obs.health()).render();
    let warm_report = gate.check("warm", warm_obs.health()).render();

    let mut records = cold_obs.into_records();
    records.extend(warm_obs.into_records());
    let mut bytes = Vec::new();
    write_obs_jsonl(&mut bytes, &records).expect("obs serializes");
    (bytes, cold_report, warm_report)
}

#[test]
fn obs_stream_is_byte_identical_across_worker_and_lane_counts() {
    let serial = observed_run(1, 1);
    for (jobs, lanes) in [(4usize, 1usize), (1, 4), (4, 4)] {
        let other = observed_run(jobs, lanes);
        let at = format!("jobs={jobs} lanes={lanes}");
        assert_eq!(
            String::from_utf8_lossy(&serial.0),
            String::from_utf8_lossy(&other.0),
            "obs JSONL must not depend on --jobs or --lanes ({at})"
        );
        assert_eq!(serial.1, other.1, "cold watchdog report differs at {at}");
        assert_eq!(serial.2, other.2, "warm watchdog report differs at {at}");
    }

    // Sanity: both passes actually sampled (two waves each).
    let waves = String::from_utf8_lossy(&serial.0).lines().count();
    assert_eq!(waves, 4, "expected 2 waves x 2 passes");
}
