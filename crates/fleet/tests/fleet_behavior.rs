//! End-to-end fleet behavior: determinism across worker counts, the
//! warm-start payoff (a warm fleet measurably out-tunes a cold one), and
//! store persistence across "process restarts".

use ace_fleet::{
    fleet_registry_version, render_report, run_fleet, FleetConfig, FleetOutcome, TuningStore,
};
use ace_telemetry::{EventKind, Telemetry};
use std::path::PathBuf;

/// A fleet small enough for tests but big enough to cross wave
/// boundaries (so intra-run warm starts happen).
fn test_config() -> FleetConfig {
    let mut cfg = FleetConfig::preset("smoke").expect("smoke preset");
    cfg.machines = 14;
    cfg.wave_size = 7;
    cfg.admit_limit = 7;
    cfg.measure_baseline = false;
    cfg
}

fn memory_store() -> TuningStore {
    TuningStore::in_memory(fleet_registry_version(), TuningStore::DEFAULT_CAPACITY)
}

/// Serializes an outcome for comparison; the schedule-dependent wall
/// field is `#[serde(skip)]`, so equal strings mean equal results.
fn fingerprint(outcome: &FleetOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

#[test]
fn fleet_is_byte_identical_across_worker_counts() {
    let cfg = test_config();
    let run_at = |jobs: usize| {
        let tel = Telemetry::counting();
        let mut store = memory_store();
        let cold = run_fleet(&cfg, &mut store, jobs, &tel).expect("cold pass");
        let warm = run_fleet(&cfg, &mut store, jobs, &tel).expect("warm pass");
        let report = render_report(&cfg, &cold, &warm, &store);
        let counts: Vec<u64> = [
            EventKind::WarmStartHit,
            EventKind::WarmStartMiss,
            EventKind::StorePublish,
            EventKind::TuningConverged,
            EventKind::Reconfigured,
        ]
        .iter()
        .map(|&k| tel.count(k))
        .collect();
        (
            fingerprint(&cold),
            fingerprint(&warm),
            report,
            counts,
            store.entries_sorted(),
        )
    };
    let serial = run_at(1);
    let parallel = run_at(8);
    assert_eq!(serial.0, parallel.0, "cold pass differs across widths");
    assert_eq!(serial.1, parallel.1, "warm pass differs across widths");
    assert_eq!(serial.2, parallel.2, "report text differs across widths");
    assert_eq!(
        serial.3, parallel.3,
        "telemetry counts differ across widths"
    );
    assert_eq!(serial.4, parallel.4, "final store differs across widths");
}

/// The lane-batching determinism matrix. The smoke shape cycles 7
/// presets, so at `wave_size <= 7` every preset-affine bucket is a
/// singleton and multi-lane groups never form; this shape runs 2
/// presets in waves of 8 so each wave builds two 4-machine affine
/// groups. Everything observable — both pass fingerprints, the report,
/// the final store, and the full telemetry *event stream* (order
/// included, since the wave merge absorbs lanes in machine-index
/// order) — must be byte-identical across jobs x lanes.
#[test]
fn fleet_is_byte_identical_across_lane_counts() {
    let run_at = |jobs: usize, lanes: usize| {
        let mut cfg = test_config();
        cfg.presets = vec!["db".into(), "compress".into()];
        cfg.machines = 16;
        cfg.wave_size = 8;
        cfg.admit_limit = 8;
        cfg.instruction_limit = 400_000;
        cfg.lanes = lanes;
        let (tel, sink) = Telemetry::buffered();
        let mut store = memory_store();
        let cold = run_fleet(&cfg, &mut store, jobs, &tel).expect("cold pass");
        let warm = run_fleet(&cfg, &mut store, jobs, &tel).expect("warm pass");
        let report = render_report(&cfg, &cold, &warm, &store);
        let events: Vec<String> = sink
            .drain()
            .iter()
            .map(|e| serde_json::to_string(e).expect("event serializes"))
            .collect();
        (
            fingerprint(&cold),
            fingerprint(&warm),
            report,
            events,
            store.entries_sorted(),
        )
    };
    let base = run_at(1, 1);
    assert!(!base.3.is_empty(), "the traced fleet must emit events");
    for (jobs, lanes) in [(1usize, 4usize), (8, 1), (8, 4)] {
        let other = run_at(jobs, lanes);
        let at = format!("jobs={jobs} lanes={lanes}");
        assert_eq!(base.0, other.0, "cold pass differs at {at}");
        assert_eq!(base.1, other.1, "warm pass differs at {at}");
        assert_eq!(base.2, other.2, "report text differs at {at}");
        assert_eq!(base.3, other.3, "telemetry event stream differs at {at}");
        assert_eq!(base.4, other.4, "final store differs at {at}");
    }
}

#[test]
fn warm_fleet_tunes_measurably_less_than_cold() {
    let cfg = test_config();
    let mut store = memory_store();
    let tel = Telemetry::counting();
    let cold = run_fleet(&cfg, &mut store, 4, &tel).expect("cold pass");
    let warm = run_fleet(&cfg, &mut store, 4, &tel).expect("warm pass");

    assert!(cold.publishes() > 0, "cold fleet must seed the store");
    assert!(warm.hits() > 0, "warm fleet must hit the seeded store");
    assert!(warm.hit_rate() > cold.hit_rate());
    assert!(
        warm.tunings() < cold.tunings(),
        "warm fleet must spend fewer trials: warm {} vs cold {}",
        warm.tunings(),
        cold.tunings()
    );
    assert!(warm.trials_saved() > 0);
    // Telemetry agrees with the report rows.
    assert_eq!(
        tel.count(EventKind::WarmStartHit),
        cold.hits() + warm.hits()
    );
    assert_eq!(
        tel.count(EventKind::WarmStartMiss),
        cold.misses() + warm.misses()
    );
    assert_eq!(
        tel.count(EventKind::StorePublish),
        cold.publishes() + warm.publishes()
    );
    // The admission layer was idle: nothing shed at this shape.
    assert_eq!(cold.shed + warm.shed, 0);
}

#[test]
fn store_log_survives_restart_and_replays_to_the_same_fleet() {
    let dir = std::env::temp_dir().join(format!("ace_fleet_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log: PathBuf = dir.join("store.jsonl");
    let cfg = test_config();
    let version = fleet_registry_version();

    // First "process": cold + warm pass against a log-backed store.
    let warm_fingerprint = {
        let mut store = TuningStore::open(&log, version, 256).expect("open fresh store");
        let _cold = run_fleet(&cfg, &mut store, 4, &Telemetry::off()).expect("cold pass");
        let warm = run_fleet(&cfg, &mut store, 4, &Telemetry::off()).expect("warm pass");
        assert_eq!(
            warm.publishes(),
            0,
            "a fully warmed fleet republishes nothing"
        );
        fingerprint(&warm)
    };

    // Second "process": replay the log; the same fleet now warm-starts
    // from its first pass, byte-identical to the first run's warm pass
    // (the warm pass published nothing, so the replayed store state is
    // exactly what that pass saw).
    let mut store = TuningStore::open(&log, version, 256).expect("replay store log");
    assert!(!store.is_empty(), "log replay must restore entries");
    let replayed = run_fleet(&cfg, &mut store, 4, &Telemetry::off()).expect("replayed pass");
    assert_eq!(fingerprint(&replayed), warm_fingerprint);

    let _ = std::fs::remove_dir_all(&dir);
}
