//! Event sinks: where emitted [`Event`]s go.
//!
//! Three implementations cover the three use cases: [`NullSink`] for
//! overhead-free counting, [`crate::RingBufferSink`] for in-memory
//! inspection from tests, and [`JsonlSink`] for durable traces consumed by
//! the bench binaries' `--telemetry` flag.

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for emitted events.
///
/// Sinks take `&self` and must be internally synchronised: the threaded
/// driver and the bench harness share one [`crate::Telemetry`] handle
/// across worker threads.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered events to their backing store.
    fn flush(&self) {}
}

impl<S: Sink + ?Sized> Sink for Arc<S> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// Discards every event.
///
/// With this sink the handle still maintains per-kind counts and the
/// metrics registry, so it is the right choice when only the summary is
/// wanted — or when measuring the overhead of the emission paths
/// themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Unbounded in-memory event buffer.
///
/// The experiment engine hands each parallel job its own buffered
/// [`crate::Telemetry`] handle backed by one of these, then drains the
/// buffers **in job-key order** into the parent handle, so a parallel run
/// replays the same event sequence a serial run would have produced.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty buffer.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Removes and returns every buffered event, in emission order.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }

    /// Copies the buffered events without draining them.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(*event);
    }
}

/// Buffered line-per-event JSON writer.
///
/// Each event is serialised with the externally tagged enum encoding, e.g.
/// `{"Reconfigured":{"cu":"L1d","from":0,...}}`, one per line. Events are
/// buffered; call [`Sink::flush`] (or drop the owning
/// [`crate::Telemetry`]) before reading the file.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and writes events to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink::new(Box::new(file)))
    }

    /// Writes events to an arbitrary writer (used by tests with `Vec<u8>`).
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        // An I/O error here (disk full) must not abort the simulated run;
        // the trace is best-effort by design.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Cu, ReconfigCause};

    /// Shared byte buffer standing in for a file.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        let events = [
            Event::HotspotPromoted {
                method: 3,
                invocations: 2,
                instret: 1_000_000,
            },
            Event::Reconfigured {
                cu: Cu::L2,
                from: 0,
                to: 3,
                cause: ReconfigCause::Trial,
                cycle: 42,
            },
            Event::TuningStep {
                scope: crate::Scope::Hotspot { method: 3 },
                trial: 1,
                ipc: 1.25,
                epi_nj: 0.5,
                instret: 2_000_000,
            },
        ];
        for ev in &events {
            sink.record(ev);
        }
        Sink::flush(&sink);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let decoded: Vec<Event> = text
            .lines()
            .map(|line| serde_json::from_str(line).expect("valid JSONL line"))
            .collect();
        assert_eq!(decoded, events);
    }
}
