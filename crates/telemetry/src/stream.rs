//! Re-reading recorded event streams.
//!
//! [`JsonlSink`](crate::JsonlSink) writes one externally tagged JSON
//! object per line; this module is the inverse: a line-by-line
//! [`EventStream`] iterator over any `BufRead`, plus the
//! [`read_events`] convenience for whole files. `ace-trace` builds its
//! analyses on top of these, and keeping the decoder next to the encoder
//! means the two cannot drift apart silently (the fixture tests pin the
//! wire format on both sides).

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Why a recorded stream could not be read back.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line was not a valid event encoding.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Decoder message.
        message: String,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "trace stream I/O error: {e}"),
            StreamError::Parse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> StreamError {
        StreamError::Io(e)
    }
}

/// Streaming decoder over a JSONL event recording.
///
/// Yields one `Result<Event, StreamError>` per non-blank line, so a
/// multi-gigabyte trace can be analyzed without loading it whole; parse
/// errors carry the line number and do not stop the iterator (callers
/// decide whether to skip or abort).
#[derive(Debug)]
pub struct EventStream<R> {
    reader: R,
    line: usize,
    buf: String,
}

impl EventStream<BufReader<File>> {
    /// Opens `path` for streaming decode.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> io::Result<EventStream<BufReader<File>>> {
        Ok(EventStream::new(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> EventStream<R> {
    /// Decodes events from an arbitrary buffered reader.
    pub fn new(reader: R) -> EventStream<R> {
        EventStream {
            reader,
            line: 0,
            buf: String::new(),
        }
    }
}

impl<R: BufRead> Iterator for EventStream<R> {
    type Item = Result<Event, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(StreamError::Io(e))),
            }
            self.line += 1;
            let text = self.buf.trim();
            if text.is_empty() {
                continue;
            }
            return Some(match serde_json::from_str::<Event>(text) {
                Ok(event) => Ok(event),
                Err(e) => Err(StreamError::Parse {
                    line: self.line,
                    message: e.to_string(),
                }),
            });
        }
    }
}

/// Reads every event of the JSONL recording at `path`, strictly: the
/// first malformed line aborts the read.
///
/// # Errors
///
/// [`StreamError::Io`] when the file cannot be opened or read,
/// [`StreamError::Parse`] (with line number) on a malformed line.
pub fn read_events(path: impl AsRef<Path>) -> Result<Vec<Event>, StreamError> {
    EventStream::open(path)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Cu, ReconfigCause, Scope};
    use crate::sink::{JsonlSink, Sink};
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn round_trips_what_the_sink_writes() {
        let events = [
            Event::HotspotPromoted {
                method: 3,
                invocations: 9,
                instret: 1_000,
            },
            Event::Reconfigured {
                cu: Cu::L1d,
                from: 0,
                to: 2,
                cause: ReconfigCause::Apply,
                cycle: 2_000,
            },
            Event::TuningConverged {
                scope: Scope::Phase { phase: 1 },
                trials: 5,
                ipc: 1.75,
                epi_nj: 0.25,
                instret: 3_000,
            },
        ];
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        for ev in &events {
            sink.record(ev);
        }
        Sink::flush(&sink);
        let bytes = buf.0.lock().unwrap().clone();
        let decoded: Vec<Event> = EventStream::new(bytes.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(decoded, events);
    }

    #[test]
    fn blank_lines_skip_and_errors_carry_line_numbers() {
        let text =
            "\n{\"HotspotPromoted\":{\"method\":1,\"invocations\":2,\"instret\":3}}\n\nnot json\n";
        let items: Vec<_> = EventStream::new(text.as_bytes()).collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].is_ok());
        match items[1].as_ref().unwrap_err() {
            StreamError::Parse { line, .. } => assert_eq!(*line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
