//! Lock-free bounded ring buffer sink.
//!
//! A fixed number of slots is overwritten in arrival order, so the buffer
//! always holds the *last* `capacity` events — the right shape for tests
//! and the timeline example, which care about recent decisions and must
//! not let a long run grow memory without bound.
//!
//! Writers claim a ticket from a shared counter and publish into
//! `ticket % capacity` guarded by a per-slot sequence word (odd while a
//! write is in flight, `2 * ticket + 2` once published). Readers take a
//! consistent snapshot by re-checking the sequence after copying — the
//! classic seqlock pattern, valid here because [`Event`] is `Copy`.

use crate::event::Event;
use crate::sink::Sink;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

struct Slot {
    /// 0 = never written; `2t + 1` = ticket `t` writing; `2t + 2` = done.
    seq: AtomicU64,
    data: UnsafeCell<MaybeUninit<Event>>,
}

/// In-memory sink keeping the most recent `capacity` events.
pub struct RingBufferSink {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

// SAFETY: `data` is only written by the thread that claimed the slot's
// ticket (enforced by the `seq` CAS in `record`), and `snapshot` validates
// `seq` before and after every read so torn reads are discarded.
unsafe impl Sync for RingBufferSink {}
unsafe impl Send for RingBufferSink {}

impl RingBufferSink {
    /// Creates a ring holding the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingBufferSink {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingBufferSink {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Copies out the retained events, oldest first.
    ///
    /// Safe to call concurrently with writers; slots with a write in
    /// flight at snapshot time are skipped rather than torn.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let len = self.slots.len() as u64;
        let start = head.saturating_sub(len);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket % len) as usize];
            let published = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != published {
                continue;
            }
            // SAFETY: `seq == published` means ticket's write completed;
            // re-checking below rejects a concurrent overwrite that began
            // during the copy. Event is Copy, so a discarded read is fine.
            let event = unsafe { (*slot.data.get()).assume_init() };
            if slot.seq.load(Ordering::Acquire) == published {
                out.push(event);
            }
        }
        out
    }
}

impl Sink for RingBufferSink {
    fn record(&self, event: &Event) {
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let len = self.slots.len() as u64;
        let slot = &self.slots[(ticket % len) as usize];
        // The previous occupant of this slot (ticket - len) must have
        // published before we may reuse it; exact-match CAS keeps lap
        // order strict and deadlock-free.
        let expected = if ticket < len {
            0
        } else {
            2 * (ticket - len) + 2
        };
        let writing = 2 * ticket + 1;
        while slot
            .seq
            .compare_exchange_weak(expected, writing, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        // SAFETY: the CAS above grants this thread exclusive write access
        // until the release store below publishes the slot.
        unsafe {
            (*slot.data.get()).write(*event);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }
}

impl std::fmt::Debug for RingBufferSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBufferSink")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn marker(i: u64) -> Event {
        Event::HotspotPromoted {
            method: i as u32,
            invocations: i,
            instret: i,
        }
    }

    fn method_of(ev: &Event) -> u64 {
        match ev {
            Event::HotspotPromoted { invocations, .. } => *invocations,
            _ => panic!("unexpected event"),
        }
    }

    #[test]
    fn keeps_last_capacity_events_in_order() {
        let ring = RingBufferSink::new(4);
        for i in 0..10 {
            ring.record(&marker(i));
        }
        assert_eq!(ring.recorded(), 10);
        let got: Vec<u64> = ring.snapshot().iter().map(method_of).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_fill_returns_only_written() {
        let ring = RingBufferSink::new(8);
        for i in 0..3 {
            ring.record(&marker(i));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(method_of).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn snapshot_during_concurrent_wraparound_never_tears() {
        // Capacity far below the write volume forces every slot through
        // many laps while a reader snapshots continuously. The seqlock
        // contract under test: a snapshot never returns a torn event and
        // stays ordered oldest→newest by ticket within each pass.
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 5_000;
        let ring = Arc::new(RingBufferSink::new(32));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.record(&marker(t * PER_WRITER + i));
                    }
                })
            })
            .collect();

        let reader = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = ring.snapshot();
                    assert!(snap.len() <= ring.capacity());
                    for ev in &snap {
                        // Only writer-produced markers may appear; a torn
                        // read would produce an inconsistent payload.
                        let v = method_of(ev);
                        assert!(v < WRITERS * PER_WRITER, "torn event: {v}");
                        match ev {
                            Event::HotspotPromoted {
                                method,
                                invocations,
                                instret,
                            } => {
                                assert_eq!(*method as u64, *invocations);
                                assert_eq!(*invocations, *instret);
                            }
                            other => panic!("unexpected event {other:?}"),
                        }
                    }
                    snapshots += 1;
                }
                snapshots
            })
        };

        for h in writer_handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let snapshots = reader.join().unwrap();
        assert!(snapshots > 0);
        assert_eq!(ring.recorded(), WRITERS * PER_WRITER);

        // Quiescent snapshot after full wraparound: exactly `capacity`
        // events, all from the final lap window.
        let final_snap = ring.snapshot();
        assert_eq!(final_snap.len(), ring.capacity());
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let ring = Arc::new(RingBufferSink::new((THREADS * PER_THREAD) as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        ring.record(&marker(t * PER_THREAD + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u64> = ring.snapshot().iter().map(method_of).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..THREADS * PER_THREAD).collect();
        assert_eq!(got, want);
    }
}
