//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! Handles returned by the registry are cheap `Arc` clones over atomics,
//! so hot paths look a metric up once (at `set_telemetry` time) and then
//! update it without touching the registry lock again. All updates use
//! relaxed atomics — metrics are monotonic aggregates, not synchronisation.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Adds `v` to an `f64` stored as bits in an `AtomicU64`.
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Monotonically increasing integer metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point metric.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper-inclusive bucket bounds, strictly increasing.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last one is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Fixed-bucket histogram.
///
/// A sample `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; samples above the last bound land in the overflow
/// bucket. Bounds are fixed at registration, so merging and comparing
/// histograms across runs is trivial.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        let bounds: Vec<f64> = bounds.to_vec();
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }))
    }

    /// Records one sample.
    pub fn record(&self, v: f64) {
        let core = &*self.0;
        let idx = core.bounds.partition_point(|&b| b < v);
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&core.sum_bits, v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The upper-inclusive bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) from the
    /// bucket counts, interpolating linearly within the winning bucket.
    ///
    /// The first bucket interpolates from 0 (all recorded quantities here
    /// are non-negative); a quantile landing in the overflow bucket
    /// returns the last bound, the only finite value known for it. An
    /// empty histogram returns 0.0.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from(&self.0.bounds, &self.bucket_counts(), q)
    }

    /// Adds another histogram's buckets, count, and sum into this one.
    /// Both histograms must share the same bounds.
    pub fn merge_from(&self, other: &Histogram) {
        debug_assert_eq!(self.bounds(), other.bounds());
        let core = &*self.0;
        for (mine, theirs) in core.buckets.iter().zip(other.0.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        core.count.fetch_add(other.count(), Ordering::Relaxed);
        add_f64(&core.sum_bits, other.sum());
    }
}

/// Records wall-clock milliseconds into a histogram when dropped.
///
/// Wall-clock durations are deliberately confined to the metrics side:
/// they never enter the event stream, which must stay deterministic.
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl ScopedTimer {
    /// Stops the timer early and returns the elapsed milliseconds.
    pub fn stop(mut self) -> f64 {
        self.armed = false;
        let ms = self.start.elapsed().as_secs_f64() * 1e3;
        self.hist.record(ms);
        ms
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// Shared quantile kernel over raw bucket counts, used by both the live
/// [`Histogram`] and the frozen [`crate::HistogramSnapshot`].
pub(crate) fn quantile_from(bounds: &[f64], buckets: &[u64], q: f64) -> f64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0.0;
    }
    let target = q.clamp(0.0, 1.0) * count as f64;
    let mut below = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let cum = below + n;
        if cum as f64 >= target {
            if i >= bounds.len() {
                // Overflow bucket: the last bound is the only finite
                // value we know; callers wanting better tails should
                // widen their bounds.
                return bounds.last().copied().unwrap_or(0.0);
            }
            let upper = bounds[i];
            let lower = if i == 0 {
                upper.min(0.0)
            } else {
                bounds[i - 1]
            };
            let frac = ((target - below as f64) / n as f64).clamp(0.0, 1.0);
            return lower + (upper - lower) * frac;
        }
        below = cum;
    }
    bounds.last().copied().unwrap_or(0.0)
}

/// Default timer buckets: 0.01 ms to ~10 min, quarter-decade spacing.
pub(crate) fn timer_bounds() -> Vec<f64> {
    let mut out = Vec::new();
    let mut b = 0.01;
    while b < 1e6 {
        out.push(b);
        b *= 10f64.powf(0.25);
    }
    out
}

/// Named metric registry shared by everything holding a
/// [`crate::Telemetry`] handle.
///
/// Lookups are name-keyed and idempotent: asking for an existing metric
/// returns a handle to the same underlying atomics.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Metrics {
    /// Returns (registering if needed) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("metrics lock").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("metrics lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering if needed) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("metrics lock").get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("metrics lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (registering if needed) the histogram called `name`.
    ///
    /// The first registration fixes the bucket bounds; later callers get
    /// the existing histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        if let Some(h) = self.histograms.read().expect("metrics lock").get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("metrics lock")
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Starts a scoped wall-clock timer feeding the histogram `name`
    /// (milliseconds, default decade-spaced bounds).
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer {
            hist: self.histogram(name, &timer_bounds()),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise, gauges take `other`'s value (last write wins —
    /// callers absorb in a deterministic order).
    ///
    /// Used by the experiment engine to combine the per-job registries of
    /// a parallel run into the one summary a serial run would have built.
    pub fn absorb(&self, other: &Metrics) {
        for (name, c) in other.counters.read().expect("metrics lock").iter() {
            self.counter(name).add(c.get());
        }
        for (name, g) in other.gauges.read().expect("metrics lock").iter() {
            self.gauge(name).set(g.get());
        }
        for (name, h) in other.histograms.read().expect("metrics lock").iter() {
            let mine = self.histogram(name, h.bounds());
            if mine.bounds() == h.bounds() {
                mine.merge_from(h);
            } else {
                // Bounds mismatch (first registration wins): preserve the
                // count and sum by replaying the other side's mean.
                let (n, mean) = (h.count(), h.mean());
                for _ in 0..n {
                    mine.record(mean);
                }
            }
        }
    }

    /// Freezes the registry into an ordered, serializable
    /// [`crate::MetricsSnapshot`].
    pub fn snapshot(&self) -> crate::MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    crate::HistogramSnapshot {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                )
            })
            .collect();
        crate::MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Human-readable dump of every registered metric, sorted by name.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.read().expect("metrics lock").iter() {
            let _ = writeln!(out, "  counter   {name:<32} {}", c.get());
        }
        for (name, g) in self.gauges.read().expect("metrics lock").iter() {
            let _ = writeln!(out, "  gauge     {name:<32} {:.4}", g.get());
        }
        for (name, h) in self.histograms.read().expect("metrics lock").iter() {
            let _ = writeln!(
                out,
                "  histogram {name:<32} n={} mean={:.3} sum={:.3}",
                h.count(),
                h.mean(),
                h.sum()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let m = Metrics::default();
        let c = m.counter("reconfigs");
        c.inc();
        c.add(4);
        assert_eq!(m.counter("reconfigs").get(), 5);
        let g = m.gauge("ipc");
        g.set(1.25);
        assert_eq!(m.gauge("ipc").get(), 1.25);
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let m = Metrics::default();
        let h = m.histogram("lat", &[1.0, 10.0, 100.0]);
        // Exactly on a bound -> that bucket; just above -> next bucket.
        h.record(1.0);
        h.record(1.0000001);
        h.record(10.0);
        h.record(100.0);
        h.record(100.0001); // overflow
        h.record(0.5);
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - (1.0 + 1.0000001 + 10.0 + 100.0 + 100.0001 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_are_shared() {
        let m = Metrics::default();
        let a = m.histogram("x", &[1.0]);
        let b = m.histogram("x", &[5.0, 6.0]); // bounds of first registration win
        a.record(0.5);
        b.record(2.0);
        assert_eq!(a.bucket_counts(), vec![1, 1]);
        assert_eq!(b.bounds(), &[1.0]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let m = Metrics::default();
        let h = m.histogram("q", &[10.0, 20.0, 40.0]);
        // 10 samples in (10, 20]: uniform mass across the second bucket.
        for _ in 0..10 {
            h.record(15.0);
        }
        assert_eq!(h.quantile(0.0), 10.0); // lower edge of first occupied bucket
        assert_eq!(h.quantile(0.5), 15.0); // midway through the bucket
        assert_eq!(h.quantile(1.0), 20.0); // upper edge
                                           // Spread across buckets: 5 in first (interpolated from 0), 5 in third.
        let h2 = m.histogram("q2", &[10.0, 20.0, 40.0]);
        for _ in 0..5 {
            h2.record(5.0);
            h2.record(30.0);
        }
        assert_eq!(h2.quantile(0.25), 5.0); // halfway into [0, 10]
        assert_eq!(h2.quantile(0.5), 10.0); // exactly the first bucket edge
        assert_eq!(h2.quantile(0.75), 30.0); // halfway into (20, 40]
    }

    #[test]
    fn quantile_edge_cases_empty_and_overflow() {
        let m = Metrics::default();
        let empty = m.histogram("empty", &[1.0, 2.0]);
        assert_eq!(empty.quantile(0.5), 0.0);
        let h = m.histogram("over", &[1.0, 2.0]);
        h.record(100.0); // overflow bucket only
        assert_eq!(h.quantile(0.5), 2.0); // clamps to last bound
        h.record(1.5);
        // p100 still lands in overflow; p25 interpolates in (1, 2].
        assert_eq!(h.quantile(1.0), 2.0);
        assert_eq!(h.quantile(0.25), 1.5);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn scoped_timer_records_on_drop_and_stop() {
        let m = Metrics::default();
        {
            let _t = m.timer("io_ms");
        }
        let ms = m.timer("io_ms").stop();
        assert!(ms >= 0.0);
        assert!(m.timer("io_ms").stop() >= 0.0);
        // Three samples: one drop, two explicit stops.
        let h = m.histogram("io_ms", &[]);
        assert_eq!(h.count(), 3);
    }
}
