//! Frozen, serializable views of the metrics registry.
//!
//! A [`MetricsSnapshot`] is what `ace-obs` exports: the live atomics of
//! [`crate::Metrics`] copied into ordered `BTreeMap`s, so two snapshots
//! of identical registries serialize to identical bytes. Snapshots
//! support subtraction ([`MetricsSnapshot::delta_since`]) for
//! time-series analysis and render to the Prometheus text exposition
//! format ([`MetricsSnapshot::render_prometheus`]) for external
//! scrapers.
//!
//! [`ObsRecord`] wraps a snapshot with a `(pass, wave)` key — the fleet
//! driver's wave-indexed sampling unit. The index is a logical wave
//! number, never a wall-clock timestamp, so an obs stream is
//! byte-identical at any `--jobs` width (DESIGN.md §11).

use crate::metrics::quantile_from;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, BufRead};

/// Frozen view of one histogram: bounds, per-bucket counts (last entry
/// is the overflow bucket), total count, and sum.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the final entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Same estimator as [`crate::Histogram::quantile`], over the frozen
    /// buckets.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from(&self.bounds, &self.buckets, q)
    }
}

/// Ordered, serializable copy of a [`crate::Metrics`] registry.
///
/// `BTreeMap` keys pin the iteration (and therefore serialization and
/// render) order to name order; the golden fixture in
/// `tests/metrics_render.rs` holds that contract.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The change from `prev` (an earlier snapshot of the same registry)
    /// to `self`.
    ///
    /// Counters and histogram buckets subtract (saturating, so a metric
    /// absent from `prev` contributes its full value); gauges are
    /// levels, not accumulators, so the delta keeps the *difference*
    /// `self - prev` (a gauge absent from `prev` keeps its value).
    /// Histograms whose bounds changed between snapshots — only possible
    /// across different registries — keep `self`'s state whole.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| {
                (
                    name.clone(),
                    v.saturating_sub(prev.counters.get(name).copied().unwrap_or(0)),
                )
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, &v)| {
                (
                    name.clone(),
                    v - prev.gauges.get(name).copied().unwrap_or(0.0),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let delta = match prev.histograms.get(name) {
                    Some(p) if p.bounds == h.bounds => HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        buckets: h
                            .buckets
                            .iter()
                            .zip(&p.buckets)
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect(),
                        count: h.count.saturating_sub(p.count),
                        sum: h.sum - p.sum,
                    },
                    _ => h.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` comments, sanitized `ace_`-prefixed
    /// metric names, and cumulative `_bucket{le="..."}` histogram series
    /// ending in `le="+Inf"`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", prom_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, &count) in h.buckets.iter().enumerate() {
                cum += count;
                let le = match h.bounds.get(i) {
                    Some(b) => prom_f64(*b),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_sum {}", prom_f64(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

/// Sanitizes a registry name (`engine.job_wall_ms`) into a Prometheus
/// metric name (`ace_engine_job_wall_ms`): `[a-zA-Z0-9_:]` pass through,
/// everything else becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ace_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus float rendering: Rust's shortest-round-trip `{}` format,
/// which Prometheus parses, with non-finite spellings pinned.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// One wave-indexed observation: a metrics snapshot keyed by the pass
/// it belongs to (`cold`/`warm` for the fleet bin) and the logical wave
/// index within that pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsRecord {
    /// Which pass of the run this sample belongs to.
    pub pass: String,
    /// Zero-based logical wave index within the pass — the determinism
    /// key; never derived from wall-clock time.
    pub wave: u64,
    /// The cumulative registry state at the end of that wave.
    pub metrics: MetricsSnapshot,
}

/// Serializes obs records as JSONL, one record per line.
pub fn write_obs_jsonl(w: &mut impl io::Write, records: &[ObsRecord]) -> io::Result<()> {
    for rec in records {
        let line = serde_json::to_string(rec).map_err(io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads an obs JSONL stream, reporting the 1-based line number of the
/// first malformed record.
pub fn read_obs_jsonl(r: impl io::Read) -> Result<Vec<ObsRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in io::BufReader::new(r).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: ObsRecord =
            serde_json::from_str(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn sample_registry() -> Metrics {
        let m = Metrics::default();
        m.counter("fleet.warm_hits").add(42);
        m.counter("fleet.machines").add(64);
        m.gauge("fleet.hit_rate").set(0.9375);
        let h = m.histogram("fleet.ipc", &[0.5, 1.0, 2.0]);
        h.record(0.75);
        h.record(1.5);
        h.record(3.0);
        m
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let snap = sample_registry().snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn snapshots_of_identical_registries_are_byte_identical() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn delta_since_subtracts_counters_and_buckets() {
        let m = sample_registry();
        let before = m.snapshot();
        m.counter("fleet.warm_hits").add(8);
        m.counter("fleet.new_counter").add(3);
        m.gauge("fleet.hit_rate").set(0.95);
        m.histogram("fleet.ipc", &[]).record(0.6);
        let after = m.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.counters["fleet.warm_hits"], 8);
        assert_eq!(delta.counters["fleet.machines"], 0);
        // Metric absent from prev contributes whole.
        assert_eq!(delta.counters["fleet.new_counter"], 3);
        assert!((delta.gauges["fleet.hit_rate"] - 0.0125).abs() < 1e-12);
        let h = &delta.histograms["fleet.ipc"];
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets, vec![0, 1, 0, 0]);
        assert!((h.sum - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_snapshot_quantile_matches_live() {
        let m = sample_registry();
        let live = m.histogram("fleet.ipc", &[]);
        let snap = m.snapshot();
        let frozen = &snap.histograms["fleet.ipc"];
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(frozen.quantile(q), live.quantile(q));
        }
        assert_eq!(frozen.mean(), live.mean());
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_sanitized() {
        let text = sample_registry().snapshot().render_prometheus();
        assert!(text.contains("# TYPE ace_fleet_warm_hits counter\nace_fleet_warm_hits 42\n"));
        assert!(text.contains("# TYPE ace_fleet_hit_rate gauge\nace_fleet_hit_rate 0.9375\n"));
        // Histogram buckets are cumulative and end with +Inf.
        assert!(text.contains("ace_fleet_ipc_bucket{le=\"0.5\"} 0\n"));
        assert!(text.contains("ace_fleet_ipc_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("ace_fleet_ipc_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("ace_fleet_ipc_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("ace_fleet_ipc_count 3\n"));
    }

    #[test]
    fn obs_records_round_trip_through_jsonl() {
        let records = vec![
            ObsRecord {
                pass: "cold".into(),
                wave: 0,
                metrics: sample_registry().snapshot(),
            },
            ObsRecord {
                pass: "cold".into(),
                wave: 1,
                metrics: sample_registry().snapshot(),
            },
        ];
        let mut buf = Vec::new();
        write_obs_jsonl(&mut buf, &records).unwrap();
        let back = read_obs_jsonl(&buf[..]).unwrap();
        assert_eq!(back, records);
        let err = read_obs_jsonl(&b"{\"pass\":\"cold\"\n"[..]).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
