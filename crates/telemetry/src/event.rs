//! Typed decision events emitted by the adaptive managers.
//!
//! Every event is `Copy` and carries only architectural counters
//! (`instret`, `cycle`) rather than wall-clock timestamps, so two runs with
//! identical seeds produce byte-identical event streams. That determinism
//! is load-bearing: the regression tests diff whole streams.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum bytes a [`SpanName`] stores inline.
pub const SPAN_NAME_CAP: usize = 24;

/// Fixed-capacity inline span label.
///
/// [`Event`] must stay `Copy` (the ring-buffer seqlock depends on it), so
/// span names cannot be heap strings. A `SpanName` holds up to
/// [`SPAN_NAME_CAP`] UTF-8 bytes inline, truncating longer inputs at a
/// character boundary. It serializes as a plain JSON string, so the JSONL
/// encoding reads naturally and longer names survive a decode round-trip
/// in their truncated form.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanName {
    len: u8,
    bytes: [u8; SPAN_NAME_CAP],
}

impl SpanName {
    /// Builds a span name from `s`, truncating past [`SPAN_NAME_CAP`]
    /// bytes at the nearest UTF-8 character boundary.
    pub fn new(s: &str) -> SpanName {
        let mut len = s.len().min(SPAN_NAME_CAP);
        while !s.is_char_boundary(len) {
            len -= 1;
        }
        let mut bytes = [0u8; SPAN_NAME_CAP];
        bytes[..len].copy_from_slice(&s.as_bytes()[..len]);
        SpanName {
            len: len as u8,
            bytes,
        }
    }

    /// The stored label.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize])
            .expect("SpanName invariant: stored bytes are valid UTF-8")
    }
}

impl fmt::Debug for SpanName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanName({:?})", self.as_str())
    }
}

impl fmt::Display for SpanName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for SpanName {
    fn from(s: &str) -> SpanName {
        SpanName::new(s)
    }
}

impl Serialize for SpanName {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for SpanName {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => Ok(SpanName::new(s)),
            _ => Err(serde::Error::custom("expected span-name string")),
        }
    }
}

/// A configurable unit of the modeled machine.
///
/// Since the registry refactor this is the open [`ace_sim::CuId`] index,
/// not a closed enum: events name whatever unit a machine registered.
/// The JSONL encoding of the historical units is unchanged (committed
/// trace fixtures pin it).
pub use ace_sim::CuId as Cu;

/// The program region a tuning episode is attached to, one variant per
/// adaptation scheme.
///
/// The `Ord` impl (declaration order, then id) gives downstream analyses
/// a deterministic per-scope iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// A promoted hotspot method (the paper's DO-driven scheme).
    Hotspot {
        /// Method id of the hotspot.
        method: u32,
    },
    /// A BBV phase (the temporal baseline).
    Phase {
        /// Phase id assigned by the BBV classifier.
        phase: u32,
    },
    /// A large procedure (the positional baseline).
    Procedure {
        /// Method id of the procedure.
        method: u32,
    },
}

impl Scope {
    /// Compact stable label (`hotspot:3`, `phase:0`, `proc:7`), used by
    /// trace summaries and the Chrome exporter's track names.
    pub fn label(self) -> String {
        match self {
            Scope::Hotspot { method } => format!("hotspot:{method}"),
            Scope::Phase { phase } => format!("phase:{phase}"),
            Scope::Procedure { method } => format!("proc:{method}"),
        }
    }
}

/// Why a reconfiguration request was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReconfigCause {
    /// Switching to the next trial configuration of a tuning episode.
    Trial,
    /// Applying a converged best configuration.
    Apply,
    /// Resetting to the baseline (e.g. after a misattributed interval).
    Reset,
}

impl ReconfigCause {
    /// Short lowercase name used in summaries.
    pub fn name(self) -> &'static str {
        match self {
            ReconfigCause::Trial => "trial",
            ReconfigCause::Apply => "apply",
            ReconfigCause::Reset => "reset",
        }
    }
}

/// One decision made by the DO system or an ACE manager.
///
/// Variants are ordered roughly by lifecycle: a method is promoted, a
/// tuning episode starts, steps through trials, converges, and the chosen
/// configuration is applied (emitting [`Event::Reconfigured`]); drift may
/// later trigger a retune. [`Event::IntervalSample`] is the temporal
/// scheme's per-interval heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The DO system promoted a method to hotspot status.
    HotspotPromoted {
        /// Promoted method id.
        method: u32,
        /// Invocation count at promotion time.
        invocations: u64,
        /// Retired-instruction counter at promotion time.
        instret: u64,
    },
    /// A tuning episode began for a scope.
    TuningStarted {
        /// What is being tuned.
        scope: Scope,
        /// Number of candidate configurations the episode will try.
        configs: u32,
        /// Retired-instruction counter when the episode began.
        instret: u64,
    },
    /// One trial configuration of a tuning episode was measured.
    TuningStep {
        /// What is being tuned.
        scope: Scope,
        /// Zero-based index of the trial that was just measured.
        trial: u32,
        /// Measured instructions per cycle under the trial configuration.
        ipc: f64,
        /// Measured energy per instruction (nanojoules) under the trial.
        epi_nj: f64,
        /// Retired-instruction counter when the measurement completed.
        instret: u64,
    },
    /// A tuning episode finished and picked its best configuration.
    TuningConverged {
        /// What was tuned.
        scope: Scope,
        /// Number of trials the episode measured.
        trials: u32,
        /// IPC of the winning configuration.
        ipc: f64,
        /// Energy per instruction (nanojoules) of the winning configuration.
        epi_nj: f64,
        /// Retired-instruction counter at convergence.
        instret: u64,
    },
    /// A CU actually changed size.
    Reconfigured {
        /// Which configurable unit resized.
        cu: Cu,
        /// Size-level index before the resize (0 = largest).
        from: u8,
        /// Size-level index after the resize.
        to: u8,
        /// Why the request was issued.
        cause: ReconfigCause,
        /// Cycle counter after the resize (includes the flush penalty).
        cycle: u64,
    },
    /// Behaviour drifted past the retune threshold; the scope's tuning
    /// state was discarded and a fresh episode scheduled.
    DriftRetune {
        /// The scope being retuned.
        scope: Scope,
        /// Relative IPC drift that tripped the threshold.
        drift: f64,
        /// Retired-instruction counter at the decision.
        instret: u64,
    },
    /// One fixed-length interval of the temporal (BBV) scheme.
    IntervalSample {
        /// Phase id the interval was classified into.
        phase: u32,
        /// Zero-based interval index within the run.
        index: u64,
        /// Measured IPC over the interval.
        ipc: f64,
        /// Measured energy per instruction (nanojoules) over the interval.
        epi_nj: f64,
        /// Whether the interval continued the previous phase.
        stable: bool,
        /// Retired-instruction counter at the interval boundary.
        instret: u64,
    },
    /// A hotspot's signature matched a shared tuning-store entry, so its
    /// tuning episode was warm-started from the stored configuration
    /// instead of walking the candidate list.
    WarmStartHit {
        /// The scope that was warm-started.
        scope: Scope,
        /// Packed hotspot signature key the store matched on.
        signature: u64,
        /// Candidate-list trials the warm start avoided.
        trials_saved: u32,
        /// Retired-instruction counter at the lookup.
        instret: u64,
    },
    /// A hotspot consulted the shared tuning store and found no entry for
    /// its signature; tuning proceeds cold.
    WarmStartMiss {
        /// The scope that fell back to cold tuning.
        scope: Scope,
        /// Packed hotspot signature key that was looked up.
        signature: u64,
        /// Retired-instruction counter at the lookup.
        instret: u64,
    },
    /// A converged configuration was published to the shared tuning store
    /// under its hotspot signature.
    StorePublish {
        /// The scope whose convergence is being published.
        scope: Scope,
        /// Packed hotspot signature key the entry is stored under.
        signature: u64,
        /// Energy per instruction (nanojoules) of the published entry.
        epi_nj: f64,
        /// Retired-instruction counter at the publish.
        instret: u64,
    },
    /// Phase Distance Mapping matched a scope's behavioral vector against
    /// an already-tuned phase within the distance threshold, so the tuned
    /// configuration was adopted directly instead of searching.
    PdmPredictHit {
        /// The scope whose configuration was predicted.
        scope: Scope,
        /// Normalized behavioral distance to the matched phase.
        distance: f64,
        /// Candidate-list trials the prediction avoided.
        trials_saved: u32,
        /// Retired-instruction counter at the prediction.
        instret: u64,
    },
    /// Phase Distance Mapping found no tuned phase within the distance
    /// threshold; tuning falls back to the configuration search.
    PdmPredictMiss {
        /// The scope that fell back to the search path.
        scope: Scope,
        /// Distance to the nearest tuned phase, or `-1.0` when no tuned
        /// phase with a comparable CU set exists yet.
        distance: f64,
        /// Retired-instruction counter at the decision.
        instret: u64,
    },
    /// A named harness span opened (see `Telemetry::span`). Spans nest by
    /// begin/end pairing, like Chrome trace `B`/`E` events; the matching
    /// wall-clock duration goes to the metrics registry only, never into
    /// the event stream.
    SpanBegin {
        /// Span label (e.g. `wave` for fleet waves, `drive` for runs).
        name: SpanName,
        /// Cumulative retired instructions at entry (0 when the caller
        /// has no architectural counter in scope).
        instret: u64,
        /// Cumulative cycles at entry (0 when unavailable).
        cycle: u64,
    },
    /// The matching close of a [`Event::SpanBegin`] with the same name.
    SpanEnd {
        /// Span label, equal to the begin event's.
        name: SpanName,
        /// Cumulative retired instructions at exit.
        instret: u64,
        /// Cumulative cycles at exit.
        cycle: u64,
    },
}

/// Discriminant-only view of [`Event`], used for per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`Event::HotspotPromoted`]
    HotspotPromoted,
    /// [`Event::TuningStarted`]
    TuningStarted,
    /// [`Event::TuningStep`]
    TuningStep,
    /// [`Event::TuningConverged`]
    TuningConverged,
    /// [`Event::Reconfigured`]
    Reconfigured,
    /// [`Event::DriftRetune`]
    DriftRetune,
    /// [`Event::IntervalSample`]
    IntervalSample,
    /// [`Event::WarmStartHit`]
    WarmStartHit,
    /// [`Event::WarmStartMiss`]
    WarmStartMiss,
    /// [`Event::StorePublish`]
    StorePublish,
    /// [`Event::PdmPredictHit`]
    PdmPredictHit,
    /// [`Event::PdmPredictMiss`]
    PdmPredictMiss,
    /// [`Event::SpanBegin`]
    SpanBegin,
    /// [`Event::SpanEnd`]
    SpanEnd,
}

impl EventKind {
    /// All kinds, in declaration order (matches [`EventKind::index`]).
    pub const ALL: [EventKind; Event::NUM_KINDS] = [
        EventKind::HotspotPromoted,
        EventKind::TuningStarted,
        EventKind::TuningStep,
        EventKind::TuningConverged,
        EventKind::Reconfigured,
        EventKind::DriftRetune,
        EventKind::IntervalSample,
        EventKind::WarmStartHit,
        EventKind::WarmStartMiss,
        EventKind::StorePublish,
        EventKind::PdmPredictHit,
        EventKind::PdmPredictMiss,
        EventKind::SpanBegin,
        EventKind::SpanEnd,
    ];

    /// Stable index in `0..Event::NUM_KINDS`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The variant name as it appears in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::HotspotPromoted => "HotspotPromoted",
            EventKind::TuningStarted => "TuningStarted",
            EventKind::TuningStep => "TuningStep",
            EventKind::TuningConverged => "TuningConverged",
            EventKind::Reconfigured => "Reconfigured",
            EventKind::DriftRetune => "DriftRetune",
            EventKind::IntervalSample => "IntervalSample",
            EventKind::WarmStartHit => "WarmStartHit",
            EventKind::WarmStartMiss => "WarmStartMiss",
            EventKind::StorePublish => "StorePublish",
            EventKind::PdmPredictHit => "PdmPredictHit",
            EventKind::PdmPredictMiss => "PdmPredictMiss",
            EventKind::SpanBegin => "SpanBegin",
            EventKind::SpanEnd => "SpanEnd",
        }
    }

    /// Inverse of [`EventKind::name`]: resolves a JSONL variant name.
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl Event {
    /// Number of event kinds (length of per-kind counter arrays).
    pub const NUM_KINDS: usize = 14;

    /// The discriminant of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::HotspotPromoted { .. } => EventKind::HotspotPromoted,
            Event::TuningStarted { .. } => EventKind::TuningStarted,
            Event::TuningStep { .. } => EventKind::TuningStep,
            Event::TuningConverged { .. } => EventKind::TuningConverged,
            Event::Reconfigured { .. } => EventKind::Reconfigured,
            Event::DriftRetune { .. } => EventKind::DriftRetune,
            Event::IntervalSample { .. } => EventKind::IntervalSample,
            Event::WarmStartHit { .. } => EventKind::WarmStartHit,
            Event::WarmStartMiss { .. } => EventKind::WarmStartMiss,
            Event::StorePublish { .. } => EventKind::StorePublish,
            Event::PdmPredictHit { .. } => EventKind::PdmPredictHit,
            Event::PdmPredictMiss { .. } => EventKind::PdmPredictMiss,
            Event::SpanBegin { .. } => EventKind::SpanBegin,
            Event::SpanEnd { .. } => EventKind::SpanEnd,
        }
    }

    /// The retired-instruction or cycle counter the event is stamped with,
    /// used to order mixed streams in the timeline example.
    pub fn timestamp(&self) -> u64 {
        match *self {
            Event::HotspotPromoted { instret, .. }
            | Event::TuningStarted { instret, .. }
            | Event::TuningStep { instret, .. }
            | Event::TuningConverged { instret, .. }
            | Event::DriftRetune { instret, .. }
            | Event::IntervalSample { instret, .. }
            | Event::WarmStartHit { instret, .. }
            | Event::WarmStartMiss { instret, .. }
            | Event::StorePublish { instret, .. }
            | Event::PdmPredictHit { instret, .. }
            | Event::PdmPredictMiss { instret, .. }
            | Event::SpanBegin { instret, .. }
            | Event::SpanEnd { instret, .. } => instret,
            Event::Reconfigured { cycle, .. } => cycle,
        }
    }

    /// The tuning scope the event is attached to, for the scope-carrying
    /// variants ([`Event::IntervalSample`] maps to its [`Scope::Phase`]).
    pub fn scope(&self) -> Option<Scope> {
        match *self {
            Event::TuningStarted { scope, .. }
            | Event::TuningStep { scope, .. }
            | Event::TuningConverged { scope, .. }
            | Event::DriftRetune { scope, .. }
            | Event::WarmStartHit { scope, .. }
            | Event::WarmStartMiss { scope, .. }
            | Event::StorePublish { scope, .. }
            | Event::PdmPredictHit { scope, .. }
            | Event::PdmPredictMiss { scope, .. } => Some(scope),
            Event::IntervalSample { phase, .. } => Some(Scope::Phase { phase }),
            Event::HotspotPromoted { .. }
            | Event::Reconfigured { .. }
            | Event::SpanBegin { .. }
            | Event::SpanEnd { .. } => None,
        }
    }

    /// The measured IPC the event carries, when it carries one.
    pub fn ipc(&self) -> Option<f64> {
        match *self {
            Event::TuningStep { ipc, .. }
            | Event::TuningConverged { ipc, .. }
            | Event::IntervalSample { ipc, .. } => Some(ipc),
            _ => None,
        }
    }

    /// The measured energy per instruction (nJ) the event carries, when it
    /// carries one.
    pub fn epi_nj(&self) -> Option<f64> {
        match *self {
            Event::TuningStep { epi_nj, .. }
            | Event::TuningConverged { epi_nj, .. }
            | Event::IntervalSample { epi_nj, .. }
            | Event::StorePublish { epi_nj, .. } => Some(epi_nj),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_match_all_order() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn events_report_their_kind() {
        let ev = Event::Reconfigured {
            cu: Cu::L1d,
            from: 0,
            to: 2,
            cause: ReconfigCause::Apply,
            cycle: 123,
        };
        assert_eq!(ev.kind(), EventKind::Reconfigured);
        assert_eq!(ev.kind().name(), "Reconfigured");
        assert_eq!(ev.timestamp(), 123);
    }

    #[test]
    fn span_name_truncates_at_char_boundary() {
        assert_eq!(SpanName::new("wave").as_str(), "wave");
        let long = "x".repeat(SPAN_NAME_CAP + 10);
        assert_eq!(SpanName::new(&long).as_str().len(), SPAN_NAME_CAP);
        // A multi-byte char straddling the cap is dropped, not split.
        let mut tricky = "y".repeat(SPAN_NAME_CAP - 1);
        tricky.push('é'); // two bytes; byte SPAN_NAME_CAP is mid-char
        assert_eq!(
            SpanName::new(&tricky).as_str(),
            "y".repeat(SPAN_NAME_CAP - 1)
        );
    }

    #[test]
    fn span_events_have_kinds_and_timestamps() {
        let begin = Event::SpanBegin {
            name: SpanName::new("wave"),
            instret: 10,
            cycle: 20,
        };
        let end = Event::SpanEnd {
            name: SpanName::new("wave"),
            instret: 30,
            cycle: 60,
        };
        assert_eq!(begin.kind(), EventKind::SpanBegin);
        assert_eq!(end.kind(), EventKind::SpanEnd);
        assert_eq!(begin.timestamp(), 10);
        assert_eq!(end.timestamp(), 30);
        assert_eq!(begin.scope(), None);
        assert_eq!(begin.ipc(), None);
    }
}
