//! # ace-telemetry — observability for the ACE reproduction
//!
//! Decision-event log, metrics registry, and scoped timers for the
//! adaptive managers in `ace-core` and the DO system in `ace-runtime`.
//! The design goal is **zero overhead when off**: a disabled
//! [`Telemetry`] handle is a `None` (one word), [`Telemetry::emit`] takes
//! a closure so disabled call sites never even construct the [`Event`],
//! and the whole emission path inlines away.
//!
//! Three pieces:
//!
//! | piece | type | use |
//! |---|---|---|
//! | event log | [`Event`] + [`Sink`] | what/why/when of every adaptation decision |
//! | metrics | [`Metrics`] | counters, gauges, fixed-bucket histograms |
//! | timers | [`ScopedTimer`] | wall-clock profiling of harness phases |
//!
//! Events carry only architectural counters (`instret`, `cycle`), never
//! wall-clock time, so identically seeded runs emit byte-identical
//! streams. Wall-clock time lives exclusively in the metrics registry.
//!
//! ## Example
//!
//! ```
//! use ace_telemetry::{Cu, Event, ReconfigCause, Telemetry};
//!
//! // Capture the last 1024 events in memory.
//! let (tel, ring) = Telemetry::ring(1024);
//! tel.emit(|| Event::Reconfigured {
//!     cu: Cu::L1d,
//!     from: 0,
//!     to: 2,
//!     cause: ReconfigCause::Apply,
//!     cycle: 12_345,
//! });
//! tel.metrics().unwrap().counter("demo").inc();
//! assert_eq!(ring.snapshot().len(), 1);
//!
//! // A disabled handle costs one branch; the closure never runs.
//! let off = Telemetry::off();
//! off.emit(|| unreachable!("not constructed when telemetry is off"));
//! ```
//!
//! To trace a real run, put a handle in `ace_core::RunConfig::telemetry`
//! (see the repository README's *Observability* section and
//! `examples/telemetry_trace.rs`), or pass `--telemetry <path>` to the
//! bench binaries for a JSONL file.

// The ring buffer needs `unsafe` (seqlock over an UnsafeCell); everything
// else in the workspace forbids it, so the unsafety is quarantined here.
#![warn(missing_docs)]

mod event;
mod metrics;
mod ring;
mod sink;
mod stream;

pub use ace_sim::MAX_CUS;
pub use event::{Cu, Event, EventKind, ReconfigCause, Scope};
pub use metrics::{Counter, Gauge, Histogram, Metrics, ScopedTimer};
pub use ring::RingBufferSink;
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};
pub use stream::{read_events, EventStream, StreamError};

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    sink: Box<dyn Sink>,
    metrics: Metrics,
    counts: [AtomicU64; Event::NUM_KINDS],
}

/// Cheap-to-clone handle threaded through the run drivers and managers.
///
/// Internally an `Option<Arc<_>>`: disabled handles ([`Telemetry::off`],
/// also the `Default`) are a single `None` word and make every
/// [`Telemetry::emit`] a predictable not-taken branch. Enabled handles
/// share one sink, one [`Metrics`] registry, and per-kind event counts
/// across all clones.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The disabled handle. Emission is a no-op; the event closure is
    /// never called.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Enables telemetry with an arbitrary sink.
    pub fn new(sink: impl Sink + 'static) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                metrics: Metrics::default(),
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
            })),
        }
    }

    /// Enables telemetry with a [`NullSink`]: events are counted and
    /// metrics collected, but nothing is stored or written.
    pub fn counting() -> Telemetry {
        Telemetry::new(NullSink)
    }

    /// Enables telemetry with a [`RingBufferSink`] keeping the last
    /// `capacity` events; returns the sink too so the caller can
    /// [`RingBufferSink::snapshot`] it later.
    pub fn ring(capacity: usize) -> (Telemetry, Arc<RingBufferSink>) {
        let ring = Arc::new(RingBufferSink::new(capacity));
        (Telemetry::new(Arc::clone(&ring)), ring)
    }

    /// Enables telemetry writing JSONL to `path` (truncated on open).
    pub fn jsonl(path: impl AsRef<Path>) -> io::Result<Telemetry> {
        Ok(Telemetry::new(JsonlSink::create(path)?))
    }

    /// Enables telemetry buffering every event in memory; returns the sink
    /// too so the caller can [`MemorySink::drain`] the events later.
    ///
    /// This is the per-job handle of the parallel experiment engine: each
    /// job records into its own buffer, and the parent absorbs the buffers
    /// in deterministic job order via [`Telemetry::absorb_child`].
    pub fn buffered() -> (Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Telemetry::new(Arc::clone(&sink)), sink)
    }

    /// Replays `events` into this handle's sink and counts, then folds the
    /// child's metrics registry into this one. No-op when disabled.
    ///
    /// Calling this once per job, in the same order a serial run would
    /// have executed the jobs, reproduces the serial event stream and
    /// metric totals exactly (wall-clock timer samples aside).
    pub fn absorb_child(&self, child: &Telemetry, events: &[Event]) {
        if !self.is_enabled() {
            return;
        }
        for event in events {
            self.emit(|| *event);
        }
        if let (Some(mine), Some(theirs)) = (self.metrics(), child.metrics()) {
            mine.absorb(theirs);
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event produced by `f`, if enabled.
    ///
    /// The closure runs only when telemetry is on, so call sites may
    /// compute event fields (e.g. read machine counters) inside it
    /// without penalising disabled runs.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let event = f();
            inner.counts[event.kind().index()].fetch_add(1, Ordering::Relaxed);
            inner.sink.record(&event);
        }
    }

    /// The shared metrics registry, or `None` when disabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// How many events of `kind` have been emitted through this handle
    /// (and its clones). Zero when disabled.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.counts[kind.index()].load(Ordering::Relaxed))
    }

    /// Total events emitted across all kinds. Zero when disabled.
    pub fn total_events(&self) -> u64 {
        EventKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    /// Flushes the sink (a no-op for memory sinks).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    /// Multi-line human-readable summary: per-kind event counts followed
    /// by the metrics dump. Intended for the bench binaries' `--telemetry`
    /// output.
    pub fn summary(&self) -> String {
        let Some(inner) = &self.inner else {
            return "telemetry: off\n".to_string();
        };
        let mut out = String::from("telemetry events:\n");
        if self.total_events() == 0 {
            out.push_str("  (none emitted — cached or untraced runs produce no events)\n");
        }
        for kind in EventKind::ALL {
            let n = inner.counts[kind.index()].load(Ordering::Relaxed);
            if n > 0 {
                out.push_str(&format!("  {:<32} {n}\n", kind.name()));
            }
        }
        let metrics = inner.metrics.summary();
        if !metrics.is_empty() {
            out.push_str("telemetry metrics:\n");
            out.push_str(&metrics);
        }
        out
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(off)"),
            Some(_) => write!(f, "Telemetry(on, {} events)", self.total_events()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_runs_closure() {
        let tel = Telemetry::off();
        tel.emit(|| unreachable!("closure must not run when off"));
        assert!(!tel.is_enabled());
        assert_eq!(tel.total_events(), 0);
        assert!(tel.metrics().is_none());
        assert_eq!(tel.summary(), "telemetry: off\n");
    }

    #[test]
    fn counts_are_shared_across_clones() {
        let (tel, ring) = Telemetry::ring(16);
        let clone = tel.clone();
        tel.emit(|| Event::TuningStarted {
            scope: Scope::Hotspot { method: 1 },
            configs: 10,
            instret: 100,
        });
        clone.emit(|| Event::TuningConverged {
            scope: Scope::Hotspot { method: 1 },
            trials: 10,
            ipc: 1.0,
            epi_nj: 0.4,
            instret: 900,
        });
        assert_eq!(tel.count(EventKind::TuningStarted), 1);
        assert_eq!(tel.count(EventKind::TuningConverged), 1);
        assert_eq!(clone.total_events(), 2);
        assert_eq!(ring.snapshot().len(), 2);
        let summary = tel.summary();
        assert!(summary.contains("TuningStarted"));
        assert!(summary.contains("TuningConverged"));
    }

    #[test]
    fn metrics_live_on_the_shared_handle() {
        let tel = Telemetry::counting();
        let clone = tel.clone();
        tel.metrics().unwrap().counter("reconfigs").add(3);
        assert_eq!(clone.metrics().unwrap().counter("reconfigs").get(), 3);
        assert!(tel.summary().contains("reconfigs"));
    }
}
