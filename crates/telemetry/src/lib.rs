//! # ace-telemetry — observability for the ACE reproduction
//!
//! Decision-event log, metrics registry, and scoped timers for the
//! adaptive managers in `ace-core` and the DO system in `ace-runtime`.
//! The design goal is **zero overhead when off**: a disabled
//! [`Telemetry`] handle is a `None` (one word), [`Telemetry::emit`] takes
//! a closure so disabled call sites never even construct the [`Event`],
//! and the whole emission path inlines away.
//!
//! Three pieces:
//!
//! | piece | type | use |
//! |---|---|---|
//! | event log | [`Event`] + [`Sink`] | what/why/when of every adaptation decision |
//! | metrics | [`Metrics`] | counters, gauges, fixed-bucket histograms |
//! | timers | [`ScopedTimer`] | wall-clock profiling of harness phases |
//!
//! Events carry only architectural counters (`instret`, `cycle`), never
//! wall-clock time, so identically seeded runs emit byte-identical
//! streams. Wall-clock time lives exclusively in the metrics registry.
//!
//! ## Example
//!
//! ```
//! use ace_telemetry::{Cu, Event, ReconfigCause, Telemetry};
//!
//! // Capture the last 1024 events in memory.
//! let (tel, ring) = Telemetry::ring(1024);
//! tel.emit(|| Event::Reconfigured {
//!     cu: Cu::L1d,
//!     from: 0,
//!     to: 2,
//!     cause: ReconfigCause::Apply,
//!     cycle: 12_345,
//! });
//! tel.metrics().unwrap().counter("demo").inc();
//! assert_eq!(ring.snapshot().len(), 1);
//!
//! // A disabled handle costs one branch; the closure never runs.
//! let off = Telemetry::off();
//! off.emit(|| unreachable!("not constructed when telemetry is off"));
//! ```
//!
//! To trace a real run, put a handle in `ace_core::RunConfig::telemetry`
//! (see the repository README's *Observability* section and
//! `examples/telemetry_trace.rs`), or pass `--telemetry <path>` to the
//! bench binaries for a JSONL file.

// The ring buffer needs `unsafe` (seqlock over an UnsafeCell); everything
// else in the workspace forbids it, so the unsafety is quarantined here.
#![warn(missing_docs)]

mod event;
mod metrics;
mod ring;
mod sink;
mod snapshot;
mod stream;

pub use ace_sim::MAX_CUS;
pub use event::{Cu, Event, EventKind, ReconfigCause, Scope, SpanName, SPAN_NAME_CAP};
pub use metrics::{Counter, Gauge, Histogram, Metrics, ScopedTimer};
pub use ring::RingBufferSink;
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};
pub use snapshot::{
    read_obs_jsonl, write_obs_jsonl, HistogramSnapshot, MetricsSnapshot, ObsRecord,
};
pub use stream::{read_events, EventStream, StreamError};

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Inner {
    sink: Box<dyn Sink>,
    metrics: Metrics,
    counts: [AtomicU64; Event::NUM_KINDS],
}

/// Cheap-to-clone handle threaded through the run drivers and managers.
///
/// Internally an `Option<Arc<_>>`: disabled handles ([`Telemetry::off`],
/// also the `Default`) are a single `None` word and make every
/// [`Telemetry::emit`] a predictable not-taken branch. Enabled handles
/// share one sink, one [`Metrics`] registry, and per-kind event counts
/// across all clones.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The disabled handle. Emission is a no-op; the event closure is
    /// never called.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Enables telemetry with an arbitrary sink.
    pub fn new(sink: impl Sink + 'static) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink: Box::new(sink),
                metrics: Metrics::default(),
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
            })),
        }
    }

    /// Enables telemetry with a [`NullSink`]: events are counted and
    /// metrics collected, but nothing is stored or written.
    pub fn counting() -> Telemetry {
        Telemetry::new(NullSink)
    }

    /// Enables telemetry with a [`RingBufferSink`] keeping the last
    /// `capacity` events; returns the sink too so the caller can
    /// [`RingBufferSink::snapshot`] it later.
    pub fn ring(capacity: usize) -> (Telemetry, Arc<RingBufferSink>) {
        let ring = Arc::new(RingBufferSink::new(capacity));
        (Telemetry::new(Arc::clone(&ring)), ring)
    }

    /// Enables telemetry writing JSONL to `path` (truncated on open).
    pub fn jsonl(path: impl AsRef<Path>) -> io::Result<Telemetry> {
        Ok(Telemetry::new(JsonlSink::create(path)?))
    }

    /// Enables telemetry buffering every event in memory; returns the sink
    /// too so the caller can [`MemorySink::drain`] the events later.
    ///
    /// This is the per-job handle of the parallel experiment engine: each
    /// job records into its own buffer, and the parent absorbs the buffers
    /// in deterministic job order via [`Telemetry::absorb_child`].
    pub fn buffered() -> (Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Telemetry::new(Arc::clone(&sink)), sink)
    }

    /// Replays `events` into this handle's sink and counts, then folds the
    /// child's metrics registry into this one. No-op when disabled.
    ///
    /// Calling this once per job, in the same order a serial run would
    /// have executed the jobs, reproduces the serial event stream and
    /// metric totals exactly (wall-clock timer samples aside).
    pub fn absorb_child(&self, child: &Telemetry, events: &[Event]) {
        if !self.is_enabled() {
            return;
        }
        for event in events {
            self.emit(|| *event);
        }
        if let (Some(mine), Some(theirs)) = (self.metrics(), child.metrics()) {
            mine.absorb(theirs);
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the event produced by `f`, if enabled.
    ///
    /// The closure runs only when telemetry is on, so call sites may
    /// compute event fields (e.g. read machine counters) inside it
    /// without penalising disabled runs.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(inner) = &self.inner {
            let event = f();
            inner.counts[event.kind().index()].fetch_add(1, Ordering::Relaxed);
            inner.sink.record(&event);
        }
    }

    /// The shared metrics registry, or `None` when disabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Freezes the metrics registry into an ordered, serializable
    /// [`MetricsSnapshot`]; empty when disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics().map(Metrics::snapshot).unwrap_or_default()
    }

    /// Opens a named span with no architectural counters (both domains
    /// read 0). Equivalent to `span_at(name, 0, 0)`.
    ///
    /// Zero-cost when disabled: no event, no string work, not even an
    /// `Instant::now()` — the returned guard is a `None`.
    pub fn span(&self, name: &str) -> Span {
        self.span_at(name, 0, 0)
    }

    /// Opens a named span: emits [`Event::SpanBegin`] stamped with the
    /// caller's cumulative `instret`/`cycle` counters and starts a
    /// wall-clock timer on the side.
    ///
    /// Close it with [`Span::end_at`] (or drop it) to emit the matching
    /// [`Event::SpanEnd`] and record the elapsed wall milliseconds into
    /// the `span.<name>_ms` metrics histogram. Spans nest by begin/end
    /// pairing; the wall duration never enters the event stream, so
    /// traces stay deterministic.
    pub fn span_at(&self, name: &str, instret: u64, cycle: u64) -> Span {
        if !self.is_enabled() {
            return Span { inner: None };
        }
        let span_name = SpanName::new(name);
        self.emit(|| Event::SpanBegin {
            name: span_name,
            instret,
            cycle,
        });
        Span {
            inner: Some(SpanInner {
                tel: self.clone(),
                name: span_name,
                begin_instret: instret,
                begin_cycle: cycle,
                start: Instant::now(),
            }),
        }
    }

    /// How many events of `kind` have been emitted through this handle
    /// (and its clones). Zero when disabled.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.counts[kind.index()].load(Ordering::Relaxed))
    }

    /// Total events emitted across all kinds. Zero when disabled.
    pub fn total_events(&self) -> u64 {
        EventKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    /// Flushes the sink (a no-op for memory sinks).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    /// Multi-line human-readable summary: per-kind event counts followed
    /// by the metrics dump. Intended for the bench binaries' `--telemetry`
    /// output.
    pub fn summary(&self) -> String {
        let Some(inner) = &self.inner else {
            return "telemetry: off\n".to_string();
        };
        let mut out = String::from("telemetry events:\n");
        if self.total_events() == 0 {
            out.push_str("  (none emitted — cached or untraced runs produce no events)\n");
        }
        for kind in EventKind::ALL {
            let n = inner.counts[kind.index()].load(Ordering::Relaxed);
            if n > 0 {
                out.push_str(&format!("  {:<32} {n}\n", kind.name()));
            }
        }
        let metrics = inner.metrics.summary();
        if !metrics.is_empty() {
            out.push_str("telemetry metrics:\n");
            out.push_str(&metrics);
        }
        out
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(off)"),
            Some(_) => write!(f, "Telemetry(on, {} events)", self.total_events()),
        }
    }
}

struct SpanInner {
    tel: Telemetry,
    name: SpanName,
    begin_instret: u64,
    begin_cycle: u64,
    start: Instant,
}

/// Guard for an open span (see [`Telemetry::span_at`]).
///
/// Dropping it closes the span at the begin counters — fine for callers
/// that only want the wall-clock histogram. Callers with live
/// architectural counters should close explicitly with [`Span::end_at`]
/// so the `SpanEnd` event carries real progress.
#[derive(Debug)]
#[must_use = "a span closes when this guard drops"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl fmt::Debug for SpanInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanInner({:?})", self.name.as_str())
    }
}

impl Span {
    /// Closes the span at the counters it began with (a zero-length span
    /// in both architectural domains; the wall duration is still real).
    pub fn end(mut self) {
        if let Some(inner) = self.inner.take() {
            let (instret, cycle) = (inner.begin_instret, inner.begin_cycle);
            Span::finish(inner, instret, cycle);
        }
    }

    /// Closes the span, stamping [`Event::SpanEnd`] with the caller's
    /// current cumulative counters and recording the elapsed wall
    /// milliseconds into the `span.<name>_ms` histogram.
    pub fn end_at(mut self, instret: u64, cycle: u64) {
        if let Some(inner) = self.inner.take() {
            Span::finish(inner, instret, cycle);
        }
    }

    fn finish(inner: SpanInner, instret: u64, cycle: u64) {
        let wall_ms = inner.start.elapsed().as_secs_f64() * 1e3;
        inner.tel.emit(|| Event::SpanEnd {
            name: inner.name,
            instret,
            cycle,
        });
        if let Some(metrics) = inner.tel.metrics() {
            metrics
                .histogram(
                    &format!("span.{}_ms", inner.name.as_str()),
                    &metrics::timer_bounds(),
                )
                .record(wall_ms);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let (instret, cycle) = (inner.begin_instret, inner.begin_cycle);
            Span::finish(inner, instret, cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_runs_closure() {
        let tel = Telemetry::off();
        tel.emit(|| unreachable!("closure must not run when off"));
        assert!(!tel.is_enabled());
        assert_eq!(tel.total_events(), 0);
        assert!(tel.metrics().is_none());
        assert_eq!(tel.summary(), "telemetry: off\n");
    }

    #[test]
    fn counts_are_shared_across_clones() {
        let (tel, ring) = Telemetry::ring(16);
        let clone = tel.clone();
        tel.emit(|| Event::TuningStarted {
            scope: Scope::Hotspot { method: 1 },
            configs: 10,
            instret: 100,
        });
        clone.emit(|| Event::TuningConverged {
            scope: Scope::Hotspot { method: 1 },
            trials: 10,
            ipc: 1.0,
            epi_nj: 0.4,
            instret: 900,
        });
        assert_eq!(tel.count(EventKind::TuningStarted), 1);
        assert_eq!(tel.count(EventKind::TuningConverged), 1);
        assert_eq!(clone.total_events(), 2);
        assert_eq!(ring.snapshot().len(), 2);
        let summary = tel.summary();
        assert!(summary.contains("TuningStarted"));
        assert!(summary.contains("TuningConverged"));
    }

    #[test]
    fn spans_emit_paired_events_and_wall_histogram() {
        let (tel, ring) = Telemetry::ring(16);
        let outer = tel.span_at("wave", 100, 200);
        let inner = tel.span("machine");
        inner.end();
        outer.end_at(500, 900);
        let events = ring.snapshot();
        assert_eq!(
            events.iter().map(|e| e.kind()).collect::<Vec<_>>(),
            vec![
                EventKind::SpanBegin,
                EventKind::SpanBegin,
                EventKind::SpanEnd,
                EventKind::SpanEnd
            ]
        );
        match events[3] {
            Event::SpanEnd {
                name,
                instret,
                cycle,
            } => {
                assert_eq!(name.as_str(), "wave");
                assert_eq!((instret, cycle), (500, 900));
            }
            ref other => panic!("expected SpanEnd, got {other:?}"),
        }
        let metrics = tel.metrics().unwrap();
        assert_eq!(metrics.histogram("span.wave_ms", &[]).count(), 1);
        assert_eq!(metrics.histogram("span.machine_ms", &[]).count(), 1);
    }

    #[test]
    fn span_guard_drop_closes_and_disabled_span_is_inert() {
        let (tel, ring) = Telemetry::ring(16);
        {
            let _span = tel.span("scoped");
        }
        assert_eq!(tel.count(EventKind::SpanBegin), 1);
        assert_eq!(tel.count(EventKind::SpanEnd), 1);
        assert_eq!(ring.snapshot().len(), 2);

        let off = Telemetry::off();
        let span = off.span("nothing");
        span.end_at(1, 2);
        assert_eq!(off.total_events(), 0);
    }

    #[test]
    fn metrics_live_on_the_shared_handle() {
        let tel = Telemetry::counting();
        let clone = tel.clone();
        tel.metrics().unwrap().counter("reconfigs").add(3);
        assert_eq!(clone.metrics().unwrap().counter("reconfigs").get(), 3);
        assert!(tel.summary().contains("reconfigs"));
    }
}
