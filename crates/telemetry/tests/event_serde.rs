//! The event wire format is a contract: `JsonlSink` encodes it, the
//! trace reader (`ace-trace` via [`ace_telemetry::EventStream`]) decodes
//! it, and recorded traces outlive both. Two layers of protection:
//!
//! * a property test round-tripping randomly generated events of every
//!   variant through the JSONL encoding, and
//! * a fixture test pinning the exact line encoding of every variant,
//!   so an accidental field rename/reorder fails loudly instead of
//!   silently orphaning existing traces.

use ace_telemetry::{Cu, Event, EventKind, EventStream, ReconfigCause, Scope, SpanName};
use proptest::prelude::*;

fn scope_from(tag: u8, id: u32) -> Scope {
    match tag % 3 {
        0 => Scope::Hotspot { method: id },
        1 => Scope::Phase { phase: id },
        _ => Scope::Procedure { method: id },
    }
}

#[allow(clippy::too_many_arguments)] // one parameter per proptest strategy
fn build_event(
    kind: u8,
    scope: Scope,
    id: u32,
    big: u64,
    instret: u64,
    ipc: f64,
    epi_nj: f64,
    stable: bool,
) -> Event {
    match kind % 14 {
        0 => Event::HotspotPromoted {
            method: id,
            invocations: big,
            instret,
        },
        1 => Event::TuningStarted {
            scope,
            configs: id % 64 + 1,
            instret,
        },
        2 => Event::TuningStep {
            scope,
            trial: id % 64,
            ipc,
            epi_nj,
            instret,
        },
        3 => Event::TuningConverged {
            scope,
            trials: id % 64 + 1,
            ipc,
            epi_nj,
            instret,
        },
        4 => Event::Reconfigured {
            cu: Cu::ALL[(id % 3) as usize],
            from: (id % 4) as u8,
            to: (big % 4) as u8,
            cause: [
                ReconfigCause::Trial,
                ReconfigCause::Apply,
                ReconfigCause::Reset,
            ][(id % 3) as usize],
            cycle: instret,
        },
        5 => Event::DriftRetune {
            scope,
            drift: ipc,
            instret,
        },
        6 => Event::IntervalSample {
            phase: id,
            index: big,
            ipc,
            epi_nj,
            stable,
            instret,
        },
        7 => Event::WarmStartHit {
            scope,
            signature: big,
            trials_saved: id % 64,
            instret,
        },
        8 => Event::WarmStartMiss {
            scope,
            signature: big,
            instret,
        },
        9 => Event::StorePublish {
            scope,
            signature: big,
            epi_nj,
            instret,
        },
        10 => Event::PdmPredictHit {
            scope,
            distance: ipc,
            trials_saved: id % 64,
            instret,
        },
        11 => Event::PdmPredictMiss {
            scope,
            distance: ipc,
            instret,
        },
        12 => Event::SpanBegin {
            name: SpanName::new(if stable { "wave" } else { "drive" }),
            instret,
            cycle: big,
        },
        _ => Event::SpanEnd {
            name: SpanName::new(if stable { "wave" } else { "drive" }),
            instret,
            cycle: big,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn jsonl_encoding_round_trips_every_variant(
        kind in 0u8..14,
        scope_tag in 0u8..3,
        id in 0u32..1_000_000,
        big in 0u64..1_000_000_000_000,
        instret in 0u64..1_000_000_000_000,
        ipc in 0.0f64..8.0,
        epi_nj in 0.0f64..4.0,
        stable in any::<bool>(),
    ) {
        let scope = scope_from(scope_tag, id);
        let event = build_event(kind, scope, id, big, instret, ipc, epi_nj, stable);
        let line = serde_json::to_string(&event).expect("event serializes");
        let back: Event = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("line {line:?} must decode: {e}"));
        prop_assert_eq!(back, event);
        // The streaming reader sees the same thing a file would contain.
        let streamed: Vec<Event> = EventStream::new(format!("{line}\n").as_bytes())
            .collect::<Result<_, _>>()
            .expect("stream decodes");
        prop_assert_eq!(streamed, vec![event]);
    }
}

/// One canonical instance of each variant, with its pinned encoding.
/// These strings are the on-disk format of every recorded trace: do NOT
/// update them to make the test pass without bumping the trace tooling.
fn fixtures() -> Vec<(Event, &'static str)> {
    vec![
        (
            Event::HotspotPromoted {
                method: 6,
                invocations: 5,
                instret: 524620,
            },
            r#"{"HotspotPromoted":{"method":6,"invocations":5,"instret":524620}}"#,
        ),
        (
            Event::TuningStarted {
                scope: Scope::Hotspot { method: 6 },
                configs: 16,
                instret: 600000,
            },
            r#"{"TuningStarted":{"scope":{"Hotspot":{"method":6}},"configs":16,"instret":600000}}"#,
        ),
        (
            Event::TuningStep {
                scope: Scope::Hotspot { method: 6 },
                trial: 2,
                ipc: 1.25,
                epi_nj: 0.5,
                instret: 700000,
            },
            r#"{"TuningStep":{"scope":{"Hotspot":{"method":6}},"trial":2,"ipc":1.25,"epi_nj":0.5,"instret":700000}}"#,
        ),
        (
            Event::TuningConverged {
                scope: Scope::Phase { phase: 3 },
                trials: 9,
                ipc: 2.5,
                epi_nj: 0.375,
                instret: 800000,
            },
            r#"{"TuningConverged":{"scope":{"Phase":{"phase":3}},"trials":9,"ipc":2.5,"epi_nj":0.375,"instret":800000}}"#,
        ),
        (
            Event::Reconfigured {
                cu: Cu::L2,
                from: 0,
                to: 3,
                cause: ReconfigCause::Apply,
                cycle: 900000,
            },
            r#"{"Reconfigured":{"cu":"L2","from":0,"to":3,"cause":"Apply","cycle":900000}}"#,
        ),
        (
            Event::DriftRetune {
                scope: Scope::Procedure { method: 11 },
                drift: 0.125,
                instret: 1000000,
            },
            r#"{"DriftRetune":{"scope":{"Procedure":{"method":11}},"drift":0.125,"instret":1000000}}"#,
        ),
        (
            Event::IntervalSample {
                phase: 4,
                index: 17,
                ipc: 1.5,
                epi_nj: 0.75,
                stable: true,
                instret: 1100000,
            },
            r#"{"IntervalSample":{"phase":4,"index":17,"ipc":1.5,"epi_nj":0.75,"stable":true,"instret":1100000}}"#,
        ),
        (
            Event::WarmStartHit {
                scope: Scope::Hotspot { method: 6 },
                signature: 81985529216486895,
                trials_saved: 3,
                instret: 1200000,
            },
            r#"{"WarmStartHit":{"scope":{"Hotspot":{"method":6}},"signature":81985529216486895,"trials_saved":3,"instret":1200000}}"#,
        ),
        (
            Event::WarmStartMiss {
                scope: Scope::Hotspot { method: 7 },
                signature: 81985529216486895,
                instret: 1300000,
            },
            r#"{"WarmStartMiss":{"scope":{"Hotspot":{"method":7}},"signature":81985529216486895,"instret":1300000}}"#,
        ),
        (
            Event::StorePublish {
                scope: Scope::Hotspot { method: 6 },
                signature: 81985529216486895,
                epi_nj: 0.5,
                instret: 1400000,
            },
            r#"{"StorePublish":{"scope":{"Hotspot":{"method":6}},"signature":81985529216486895,"epi_nj":0.5,"instret":1400000}}"#,
        ),
        (
            Event::PdmPredictHit {
                scope: Scope::Hotspot { method: 6 },
                distance: 0.125,
                trials_saved: 3,
                instret: 1500000,
            },
            r#"{"PdmPredictHit":{"scope":{"Hotspot":{"method":6}},"distance":0.125,"trials_saved":3,"instret":1500000}}"#,
        ),
        (
            Event::PdmPredictMiss {
                scope: Scope::Hotspot { method: 7 },
                distance: 0.75,
                instret: 1600000,
            },
            r#"{"PdmPredictMiss":{"scope":{"Hotspot":{"method":7}},"distance":0.75,"instret":1600000}}"#,
        ),
        (
            Event::SpanBegin {
                name: SpanName::new("wave"),
                instret: 1700000,
                cycle: 3400000,
            },
            r#"{"SpanBegin":{"name":"wave","instret":1700000,"cycle":3400000}}"#,
        ),
        (
            Event::SpanEnd {
                name: SpanName::new("wave"),
                instret: 1800000,
                cycle: 3600000,
            },
            r#"{"SpanEnd":{"name":"wave","instret":1800000,"cycle":3600000}}"#,
        ),
    ]
}

#[test]
fn fixture_pins_the_exact_jsonl_encoding() {
    let fixtures = fixtures();
    // One fixture per variant, in EventKind order — extending Event must
    // extend this fixture set.
    assert_eq!(fixtures.len(), Event::NUM_KINDS);
    for (i, (event, _)) in fixtures.iter().enumerate() {
        assert_eq!(event.kind(), EventKind::ALL[i]);
    }
    for (event, line) in &fixtures {
        assert_eq!(
            &serde_json::to_string(event).unwrap(),
            line,
            "encoder drifted for {:?}",
            event.kind()
        );
        let back: Event = serde_json::from_str(line).unwrap();
        assert_eq!(back, *event, "decoder drifted for {:?}", event.kind());
    }
}

#[test]
fn fixture_stream_decodes_as_a_whole_trace() {
    let fixtures = fixtures();
    let text: String = fixtures
        .iter()
        .map(|(_, line)| format!("{line}\n"))
        .collect();
    let events: Vec<Event> = EventStream::new(text.as_bytes())
        .collect::<Result<_, _>>()
        .unwrap();
    let expected: Vec<Event> = fixtures.iter().map(|(e, _)| *e).collect();
    assert_eq!(events, expected);
}
