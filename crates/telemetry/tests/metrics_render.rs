//! Render-determinism goldens for the metrics registry.
//!
//! The obs layer's whole contract is that identical registries render to
//! identical bytes: `Metrics` iterates `BTreeMap`s (name order), and the
//! snapshot/Prometheus renderers preserve that. These fixtures pin the
//! exact output so an accidental switch to an unordered map — or a
//! format drift in either renderer — fails loudly. Registration order is
//! deliberately scrambled relative to name order.

use ace_telemetry::{Metrics, MetricsSnapshot};

/// Builds a registry with metrics registered in non-alphabetical order.
fn scrambled_registry() -> Metrics {
    let m = Metrics::default();
    m.gauge("fleet.hit_rate").set(0.9375);
    m.counter("fleet.warm_hits").add(42);
    let h = m.histogram("engine.job_wall_ms", &[1.0, 10.0, 100.0]);
    h.record(5.0);
    h.record(50.0);
    h.record(500.0);
    m.counter("engine.jobs").add(7);
    m.gauge("fleet.machines_per_sec").set(1536.5);
    m
}

const GOLDEN_SUMMARY: &str = "  counter   engine.jobs                      7
  counter   fleet.warm_hits                  42
  gauge     fleet.hit_rate                   0.9375
  gauge     fleet.machines_per_sec           1536.5000
  histogram engine.job_wall_ms               n=3 mean=185.000 sum=555.000
";

const GOLDEN_PROMETHEUS: &str = "\
# TYPE ace_engine_jobs counter
ace_engine_jobs 7
# TYPE ace_fleet_warm_hits counter
ace_fleet_warm_hits 42
# TYPE ace_fleet_hit_rate gauge
ace_fleet_hit_rate 0.9375
# TYPE ace_fleet_machines_per_sec gauge
ace_fleet_machines_per_sec 1536.5
# TYPE ace_engine_job_wall_ms histogram
ace_engine_job_wall_ms_bucket{le=\"1\"} 0
ace_engine_job_wall_ms_bucket{le=\"10\"} 1
ace_engine_job_wall_ms_bucket{le=\"100\"} 2
ace_engine_job_wall_ms_bucket{le=\"+Inf\"} 3
ace_engine_job_wall_ms_sum 555
ace_engine_job_wall_ms_count 3
";

#[test]
fn summary_render_is_pinned_to_name_order() {
    assert_eq!(scrambled_registry().summary(), GOLDEN_SUMMARY);
}

#[test]
fn prometheus_render_is_pinned_to_name_order() {
    assert_eq!(
        scrambled_registry().snapshot().render_prometheus(),
        GOLDEN_PROMETHEUS
    );
}

#[test]
fn renders_are_stable_across_rebuilds_and_serde() {
    let a = scrambled_registry().snapshot();
    let b = scrambled_registry().snapshot();
    assert_eq!(a, b);
    assert_eq!(a.render_prometheus(), b.render_prometheus());
    let json = serde_json::to_string(&a).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back.render_prometheus(), a.render_prometheus());
}
