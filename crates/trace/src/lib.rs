//! # ace-trace — analysis tooling for ace-telemetry recordings
//!
//! `ace-telemetry` records *what the adaptive system decided*; this crate
//! answers *what the run did*. It replays a JSONL event stream through a
//! per-scope state machine and reconstructs:
//!
//! * **tuning episodes** — promotion → trials → convergence → apply →
//!   drift/retune, per hotspot/phase/procedure scope ([`Episode`]),
//! * **configuration residency** — cycles and instructions each
//!   configurable unit spent at each size level ([`CuResidency`]),
//! * **phase timelines** — maximal same-phase interval segments with
//!   per-segment IPC/EPI means ([`PhaseTimeline`]),
//! * **headline statistics** — stream-wide IPC/EPI means and episode
//!   convergence behaviour ([`Headline`]).
//!
//! On top of the [`Analysis`] sit three consumers:
//!
//! * [`summary::summarize`] / [`summary::timeline`] — deterministic
//!   human-readable reports (`ace trace summarize|timeline`),
//! * [`chrome::chrome_trace`] — Chrome trace-event JSON loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)
//!   (`ace trace chrome`),
//! * [`diff::diff`] — run-to-run regression comparison with configurable
//!   thresholds (`ace trace diff`), the core of the perf-baseline
//!   pipeline,
//! * [`obs`] — fleet observability streams: wave-over-wave metric
//!   movement reports and obs-stream regression diffs
//!   (`ace trace metrics`).
//!
//! Because telemetry events carry only architectural counters — never
//! wall-clock time — every one of these outputs is byte-identical across
//! identically seeded runs at any parallelism width, which is what makes
//! trace artifacts diffable in CI.
//!
//! ## Example
//!
//! ```
//! use ace_telemetry::{Event, Scope};
//! use ace_trace::{Analysis, EpisodeOutcome};
//!
//! let scope = Scope::Hotspot { method: 7 };
//! let events = [
//!     Event::TuningStarted { scope, configs: 4, instret: 100 },
//!     Event::TuningStep { scope, trial: 0, ipc: 1.1, epi_nj: 0.5, instret: 200 },
//!     Event::TuningConverged { scope, trials: 1, ipc: 1.1, epi_nj: 0.5, instret: 300 },
//! ];
//! let analysis = Analysis::of(&events);
//! assert_eq!(analysis.episode_count(EpisodeOutcome::Converged), 1);
//! println!("{}", ace_trace::summarize(&analysis));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod diff;
pub mod obs;
pub mod reader;
pub mod summary;

pub use analysis::{
    Analysis, Analyzer, CuResidency, Episode, EpisodeOutcome, Headline, LevelResidency, PdmStats,
    PhaseSegment, PhaseTimeline, Promotion, Reconfig, ScopeAnalysis, SpanSlice, Trial,
    WarmStartStats, NUM_LEVELS,
};
pub use chrome::chrome_trace;
pub use diff::{diff, DiffLine, DiffReport, DiffThresholds};
pub use obs::{diff_obs, diff_obs_series, metrics_report, ObsSeries};
pub use reader::{analyze_file, analyze_reader};
pub use summary::{summarize, timeline};
