//! Human-readable reports over an [`Analysis`].
//!
//! Both renderers are deterministic functions of the analysis — fixed
//! float precision, scopes in `Ord` order, no wall-clock anything — so
//! `ace trace summarize` output can be `diff`ed between runs (CI relies
//! on byte-identical summaries for `--jobs 1` vs `--jobs 4` traces).

use crate::analysis::{Analysis, EpisodeOutcome, NUM_LEVELS};
use ace_telemetry::{Cu, EventKind};
use std::fmt::Write as _;

/// Renders the headline summary: event counts, counter span, promotions,
/// per-scope episode statistics, per-CU residency, phase behaviour, and
/// stream-wide means.
pub fn summarize(analysis: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace summary");
    let _ = writeln!(out, "  events total {}", analysis.total_events());
    for kind in EventKind::ALL {
        let n = analysis.count(kind);
        if n > 0 {
            let _ = writeln!(out, "    {:<24} {n}", kind.name());
        }
    }
    let _ = writeln!(
        out,
        "  span {} instructions, {} cycles",
        analysis.final_instret, analysis.final_cycle
    );

    let _ = writeln!(out, "hotspot promotions: {}", analysis.promotions.len());
    const MAX_PROMOTIONS: usize = 20;
    for p in analysis.promotions.iter().take(MAX_PROMOTIONS) {
        let _ = writeln!(
            out,
            "  method {:<6} invocations {:<8} at instret {}",
            p.method, p.invocations, p.instret
        );
    }
    if analysis.promotions.len() > MAX_PROMOTIONS {
        let _ = writeln!(
            out,
            "  ... and {} more",
            analysis.promotions.len() - MAX_PROMOTIONS
        );
    }

    let _ = writeln!(out, "tuning scopes: {}", analysis.scopes.len());
    for scope in &analysis.scopes {
        let converged = scope
            .episodes
            .iter()
            .filter(|e| e.outcome == EpisodeOutcome::Converged)
            .count();
        let abandoned = scope
            .episodes
            .iter()
            .filter(|e| e.outcome == EpisodeOutcome::Abandoned)
            .count();
        let in_progress = scope.episodes.len() - converged - abandoned;
        let _ = write!(
            out,
            "  {:<20} episodes {} ({converged} converged, {abandoned} abandoned, {in_progress} in-progress)  drift-retunes {}",
            scope.scope.label(),
            scope.episodes.len(),
            scope.drift_retunes
        );
        if let Some(last) = scope.last_converged() {
            let _ = write!(
                out,
                "  final ipc {:.3} epi {:.3} nJ",
                last.converged_ipc.unwrap_or(0.0),
                last.converged_epi_nj.unwrap_or(0.0)
            );
        }
        out.push('\n');
    }
    if !analysis.scopes.is_empty() {
        let _ = writeln!(
            out,
            "  mean trials to converge {:.2}, mean episode span {:.0} instructions",
            analysis.mean_trials_to_converge(),
            analysis.mean_episode_span_instr()
        );
    }

    // Only traces recorded against a tuning store carry warm-start
    // events; stay silent otherwise so pre-fleet summaries are unchanged.
    let ws = &analysis.warm_start;
    if ws.lookups() > 0 || ws.publishes > 0 {
        let _ = writeln!(
            out,
            "warm start: {} hits / {} lookups ({:.1}% hit rate), {} trials saved, {} publishes",
            ws.hits,
            ws.lookups(),
            ws.hit_rate() * 100.0,
            ws.trials_saved,
            ws.publishes
        );
    }

    // Likewise, only PDM-scheme traces carry prediction events.
    let pdm = &analysis.pdm;
    if pdm.lookups() > 0 {
        let _ = writeln!(
            out,
            "phase distance mapping: {} hits / {} lookups ({:.1}% hit rate), {} trials saved",
            pdm.hits,
            pdm.lookups(),
            pdm.hit_rate() * 100.0,
            pdm.trials_saved
        );
    }

    // Harness spans only appear in obs-instrumented traces; stay silent
    // otherwise so pre-obs summaries are unchanged.
    if !analysis.spans.is_empty() || analysis.span_mismatches > 0 {
        let _ = writeln!(
            out,
            "harness spans: {} ({} mismatched ends)",
            analysis.spans.len(),
            analysis.span_mismatches
        );
        const MAX_SPANS: usize = 20;
        for span in analysis.spans.iter().take(MAX_SPANS) {
            let _ = writeln!(
                out,
                "  {:<16} depth {} instret {:>12}..{:<12} cycles {:>12}..{:<12}{}",
                span.name,
                span.depth,
                span.begin_instret,
                span.end_instret,
                span.begin_cycle,
                span.end_cycle,
                if span.open { "  (open)" } else { "" }
            );
        }
        if analysis.spans.len() > MAX_SPANS {
            let _ = writeln!(out, "  ... and {} more", analysis.spans.len() - MAX_SPANS);
        }
    }

    let _ = writeln!(out, "configuration residency (cycles per level):");
    for cu in Cu::ALL {
        let res = &analysis.residency[cu.index()];
        let fractions = res.cycle_fractions();
        let _ = write!(out, "  {:<8}", cu.name());
        for (level, frac) in fractions.iter().enumerate().take(NUM_LEVELS) {
            let _ = write!(out, " L{level} {:>5.1}%", frac * 100.0);
        }
        let _ = write!(out, "  reconfigs {}", res.reconfigs);
        if res.level_mismatches > 0 {
            let _ = write!(out, "  (level mismatches {})", res.level_mismatches);
        }
        out.push('\n');
    }

    let phases = &analysis.phases;
    let _ = writeln!(
        out,
        "phase behaviour: {} intervals, {} stable, {} segments, {} distinct phases",
        phases.intervals,
        phases.stable_intervals,
        phases.segments.len(),
        phases.distinct_phases()
    );

    let h = &analysis.headline;
    let _ = writeln!(
        out,
        "headline: ipc {:.4}, epi {:.4} nJ ({} interval samples, {} convergences)",
        h.ipc(),
        h.epi_nj(),
        h.interval_samples,
        h.convergences
    );
    out
}

/// Renders the chronological view: phase segments in interval order,
/// then every tuning episode in scope order, then every reconfiguration
/// in stream order.
pub fn timeline(analysis: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "phase timeline ({} segments):",
        analysis.phases.segments.len()
    );
    for seg in &analysis.phases.segments {
        let _ = writeln!(
            out,
            "  phase {:<4} intervals {:>4}..{:<4} instret {:>12}..{:<12} mean ipc {:.3} epi {:.3} stable {}/{}",
            seg.phase,
            seg.first_index,
            seg.last_index,
            seg.start_instret,
            seg.end_instret,
            seg.mean_ipc,
            seg.mean_epi_nj,
            seg.stable,
            seg.intervals()
        );
    }

    let episode_count = analysis.episodes().count();
    let _ = writeln!(out, "tuning episodes ({episode_count}):");
    for episode in analysis.episodes() {
        let _ = write!(
            out,
            "  {:<20} instret {:>12}..{:<12} trials {:<3} {}",
            episode.scope.label(),
            episode.started_instret,
            episode.end_instret,
            episode.trials.len(),
            episode.outcome.name()
        );
        if let (Some(ipc), Some(epi)) = (episode.converged_ipc, episode.converged_epi_nj) {
            let _ = write!(out, " ipc {ipc:.3} epi {epi:.3}");
        }
        out.push('\n');
    }

    let _ = writeln!(out, "reconfigurations ({}):", analysis.reconfigs.len());
    for r in &analysis.reconfigs {
        let _ = writeln!(
            out,
            "  cycle {:>12} {:<8} L{} -> L{}  {}",
            r.cycle,
            r.cu.name(),
            r.from,
            r.to,
            r.cause.name()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_telemetry::{Event, ReconfigCause, Scope};

    fn sample_analysis() -> Analysis {
        let scope = Scope::Hotspot { method: 3 };
        Analysis::of(&[
            Event::HotspotPromoted {
                method: 3,
                invocations: 12,
                instret: 50,
            },
            Event::TuningStarted {
                scope,
                configs: 4,
                instret: 100,
            },
            Event::TuningStep {
                scope,
                trial: 0,
                ipc: 1.2,
                epi_nj: 0.4,
                instret: 200,
            },
            Event::TuningConverged {
                scope,
                trials: 1,
                ipc: 1.2,
                epi_nj: 0.4,
                instret: 300,
            },
            Event::Reconfigured {
                cu: Cu::Window,
                from: 0,
                to: 2,
                cause: ReconfigCause::Apply,
                cycle: 400,
            },
            Event::IntervalSample {
                phase: 1,
                index: 0,
                ipc: 1.3,
                epi_nj: 0.35,
                stable: true,
                instret: 500,
            },
        ])
    }

    #[test]
    fn summarize_mentions_every_section() {
        let text = summarize(&sample_analysis());
        for needle in [
            "trace summary",
            "events total 6",
            "hotspot promotions: 1",
            "hotspot:3",
            "1 converged",
            "configuration residency",
            "phase behaviour: 1 intervals",
            "headline: ipc 1.3000",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn timeline_lists_segments_episodes_and_reconfigs() {
        let text = timeline(&sample_analysis());
        for needle in [
            "phase timeline (1 segments)",
            "tuning episodes (1)",
            "converged ipc 1.200",
            "reconfigurations (1)",
            "window",
            "L0 -> L2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn warm_start_line_only_renders_when_active() {
        let quiet = summarize(&sample_analysis());
        assert!(!quiet.contains("warm start:"), "unexpected in:\n{quiet}");

        let scope = Scope::Hotspot { method: 9 };
        let active = Analysis::of(&[
            Event::WarmStartMiss {
                scope,
                signature: 7,
                instret: 100,
            },
            Event::WarmStartHit {
                scope,
                signature: 7,
                trials_saved: 3,
                instret: 200,
            },
            Event::StorePublish {
                scope,
                signature: 7,
                epi_nj: 0.4,
                instret: 300,
            },
        ]);
        let text = summarize(&active);
        assert!(
            text.contains(
                "warm start: 1 hits / 2 lookups (50.0% hit rate), 3 trials saved, 1 publishes"
            ),
            "missing warm-start line in:\n{text}"
        );
    }

    #[test]
    fn pdm_line_only_renders_when_active() {
        let quiet = summarize(&sample_analysis());
        assert!(
            !quiet.contains("phase distance mapping:"),
            "unexpected in:\n{quiet}"
        );

        let active = Analysis::of(&[
            Event::PdmPredictMiss {
                scope: Scope::Hotspot { method: 4 },
                distance: 0.8,
                instret: 100,
            },
            Event::PdmPredictHit {
                scope: Scope::Hotspot { method: 5 },
                distance: 0.05,
                trials_saved: 7,
                instret: 200,
            },
        ]);
        let text = summarize(&active);
        assert!(
            text.contains(
                "phase distance mapping: 1 hits / 2 lookups (50.0% hit rate), 7 trials saved"
            ),
            "missing pdm line in:\n{text}"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = sample_analysis();
        assert_eq!(summarize(&a), summarize(&a.clone()));
        assert_eq!(timeline(&a), timeline(&a.clone()));
    }
}
