//! Replaying an event stream into an [`Analysis`].
//!
//! The [`Analyzer`] is a streaming state machine: feed it events in
//! recording order ([`Analyzer::push`]) and it reconstructs, per scope,
//! the tuning-episode lifecycle the managers executed (promotion →
//! trials → convergence → apply → drift/retune), plus per-CU
//! configuration residency and the BBV phase timeline. Memory stays
//! proportional to the number of *decisions* (episodes, reconfigs,
//! phase segments), not the number of events, so multi-gigabyte traces
//! analyze in one pass.
//!
//! Everything is deterministic: scopes iterate in [`Scope`]'s `Ord`
//! order, CUs in [`Cu::ALL`] order, and floats are accumulated in
//! stream order — two byte-identical traces produce byte-identical
//! analyses (the trace CLI's regression tests rely on this).

use ace_telemetry::{Cu, Event, EventKind, ReconfigCause, Scope, MAX_CUS};
use std::collections::BTreeMap;

/// Number of CU size levels (paper Table 2: four per unit, 0 = largest).
pub const NUM_LEVELS: usize = 4;

/// One measured trial inside a tuning episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// Zero-based trial index.
    pub trial: u32,
    /// Measured IPC under the trial configuration.
    pub ipc: f64,
    /// Measured energy per instruction (nJ).
    pub epi_nj: f64,
    /// Retired-instruction counter when the measurement completed.
    pub instret: u64,
}

/// How a tuning episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpisodeOutcome {
    /// The episode measured its trials and picked a winner.
    Converged,
    /// A drift retune or a restarted episode discarded it mid-flight.
    Abandoned,
    /// The trace ended while the episode was still measuring.
    InProgress,
}

impl EpisodeOutcome {
    /// Short lowercase name used in summaries.
    pub fn name(self) -> &'static str {
        match self {
            EpisodeOutcome::Converged => "converged",
            EpisodeOutcome::Abandoned => "abandoned",
            EpisodeOutcome::InProgress => "in-progress",
        }
    }
}

/// One reconstructed tuning episode.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// The scope the episode tuned.
    pub scope: Scope,
    /// Retired-instruction counter at `TuningStarted`.
    pub started_instret: u64,
    /// Candidate-configuration count announced at start (0 when the
    /// episode was reconstructed from orphan steps).
    pub configs: u32,
    /// The measured trials, in measurement order.
    pub trials: Vec<Trial>,
    /// Retired-instruction counter at the closing event (convergence,
    /// drift, restart) or the end of the trace.
    pub end_instret: u64,
    /// How the episode ended.
    pub outcome: EpisodeOutcome,
    /// IPC of the winning configuration, for converged episodes.
    pub converged_ipc: Option<f64>,
    /// Energy per instruction (nJ) of the winner, for converged episodes.
    pub converged_epi_nj: Option<f64>,
}

impl Episode {
    /// Instructions the episode spanned.
    pub fn span_instr(&self) -> u64 {
        self.end_instret.saturating_sub(self.started_instret)
    }
}

/// Everything reconstructed for one scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeAnalysis {
    /// The scope.
    pub scope: Scope,
    /// Its episodes, in start order.
    pub episodes: Vec<Episode>,
    /// Drift-retune decisions attributed to the scope.
    pub drift_retunes: u64,
}

impl ScopeAnalysis {
    /// The last converged episode, if any — the configuration the scope
    /// ended the run with.
    pub fn last_converged(&self) -> Option<&Episode> {
        self.episodes
            .iter()
            .rev()
            .find(|e| e.outcome == EpisodeOutcome::Converged)
    }
}

/// Time spent at one size level of one CU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelResidency {
    /// Cycles resident at the level (from `Reconfigured` cycle stamps).
    pub cycles: u64,
    /// Retired instructions resident at the level (from the most recent
    /// instret-stamped event at each reconfiguration).
    pub instret: u64,
}

/// Configuration residency of one CU over the whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CuResidency {
    /// The unit.
    pub cu: Cu,
    /// Per-level residency; index = size level (0 = largest).
    pub levels: [LevelResidency; NUM_LEVELS],
    /// Total resizes of the unit.
    pub reconfigs: u64,
    /// Resizes by cause, indexed Trial/Apply/Reset.
    pub by_cause: [u64; 3],
    /// `Reconfigured` events whose `from` level disagreed with the level
    /// the analyzer tracked — nonzero means a truncated or mixed trace.
    pub level_mismatches: u64,
}

impl CuResidency {
    fn new(cu: Cu) -> CuResidency {
        CuResidency {
            cu,
            levels: [LevelResidency::default(); NUM_LEVELS],
            reconfigs: 0,
            by_cause: [0; 3],
            level_mismatches: 0,
        }
    }

    /// Total cycles attributed across all levels.
    pub fn total_cycles(&self) -> u64 {
        self.levels.iter().map(|l| l.cycles).sum()
    }

    /// Per-level fraction of cycles, or all-zero when no cycles were
    /// attributed.
    pub fn cycle_fractions(&self) -> [f64; NUM_LEVELS] {
        let total = self.total_cycles();
        if total == 0 {
            return [0.0; NUM_LEVELS];
        }
        let mut out = [0.0; NUM_LEVELS];
        for (slot, level) in out.iter_mut().zip(self.levels.iter()) {
            *slot = level.cycles as f64 / total as f64;
        }
        out
    }
}

/// One maximal run of consecutive intervals classified into one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSegment {
    /// Phase id of the segment.
    pub phase: u32,
    /// First interval index of the segment.
    pub first_index: u64,
    /// Last interval index of the segment (inclusive).
    pub last_index: u64,
    /// Retired-instruction counter at the segment's first interval.
    pub start_instret: u64,
    /// Retired-instruction counter at the segment's last interval.
    pub end_instret: u64,
    /// Mean IPC over the segment's intervals.
    pub mean_ipc: f64,
    /// Mean energy per instruction (nJ) over the segment's intervals.
    pub mean_epi_nj: f64,
    /// Intervals flagged stable within the segment.
    pub stable: u64,
}

impl PhaseSegment {
    /// Number of intervals in the segment.
    pub fn intervals(&self) -> u64 {
        self.last_index - self.first_index + 1
    }
}

/// The temporal scheme's phase behaviour over the whole trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseTimeline {
    /// Maximal same-phase segments, in interval order.
    pub segments: Vec<PhaseSegment>,
    /// Total intervals sampled.
    pub intervals: u64,
    /// Intervals flagged stable.
    pub stable_intervals: u64,
}

impl PhaseTimeline {
    /// Number of distinct phase ids observed.
    pub fn distinct_phases(&self) -> usize {
        let mut ids: Vec<u32> = self.segments.iter().map(|s| s.phase).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// One hotspot promotion, as recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// Promoted method id.
    pub method: u32,
    /// Invocation count at promotion.
    pub invocations: u64,
    /// Retired-instruction counter at promotion.
    pub instret: u64,
}

/// One reconfiguration, as recorded (kept for the Chrome exporter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reconfig {
    /// Which unit resized.
    pub cu: Cu,
    /// Level before.
    pub from: u8,
    /// Level after.
    pub to: u8,
    /// Why.
    pub cause: ReconfigCause,
    /// Cycle counter after the resize.
    pub cycle: u64,
}

/// Stream-wide means of the measured quantities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Headline {
    /// Mean IPC over `IntervalSample` events (0 when none).
    pub mean_interval_ipc: f64,
    /// Mean EPI (nJ) over `IntervalSample` events (0 when none).
    pub mean_interval_epi_nj: f64,
    /// Mean winning IPC over `TuningConverged` events (0 when none).
    pub mean_converged_ipc: f64,
    /// Mean winning EPI (nJ) over `TuningConverged` events (0 when none).
    pub mean_converged_epi_nj: f64,
    /// Number of interval samples behind the interval means.
    pub interval_samples: u64,
    /// Number of convergences behind the converged means.
    pub convergences: u64,
}

impl Headline {
    /// The trace's representative IPC: the interval mean when the trace
    /// has interval samples (temporal runs), else the converged mean.
    pub fn ipc(&self) -> f64 {
        if self.interval_samples > 0 {
            self.mean_interval_ipc
        } else {
            self.mean_converged_ipc
        }
    }

    /// The trace's representative energy per instruction (nJ), chosen
    /// like [`Headline::ipc`].
    pub fn epi_nj(&self) -> f64 {
        if self.interval_samples > 0 {
            self.mean_interval_epi_nj
        } else {
            self.mean_converged_epi_nj
        }
    }
}

/// Aggregate phase-distance-mapping prediction activity in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PdmStats {
    /// Predictions adopted directly (`PdmPredictHit`).
    pub hits: u64,
    /// First trials that fell back to the search path (`PdmPredictMiss`).
    pub misses: u64,
    /// Candidate-list trials avoided across all hits.
    pub trials_saved: u64,
}

impl PdmStats {
    /// Total prediction attempts (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of attempts that predicted (0 when the trace has none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Aggregate warm-start / tuning-store activity in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStartStats {
    /// Store lookups that matched an entry (`WarmStartHit`).
    pub hits: u64,
    /// Store lookups that found nothing (`WarmStartMiss`).
    pub misses: u64,
    /// Converged configurations published (`StorePublish`).
    pub publishes: u64,
    /// Candidate-list trials avoided across all hits.
    pub trials_saved: u64,
}

impl WarmStartStats {
    /// Total store lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit (0 when the trace has no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// One reconstructed harness span (a `SpanBegin`/`SpanEnd` pair), in
/// close order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSlice {
    /// The span label.
    pub name: String,
    /// Nesting depth at begin time (0 = outermost).
    pub depth: u32,
    /// Retired-instruction counter at begin.
    pub begin_instret: u64,
    /// Cycle counter at begin.
    pub begin_cycle: u64,
    /// Retired-instruction counter at end.
    pub end_instret: u64,
    /// Cycle counter at end.
    pub end_cycle: u64,
    /// Whether the trace ended before the span closed (the end stamps
    /// then repeat the begin stamps).
    pub open: bool,
}

impl SpanSlice {
    /// Instructions the span covered.
    pub fn span_instr(&self) -> u64 {
        self.end_instret.saturating_sub(self.begin_instret)
    }

    /// Cycles the span covered.
    pub fn span_cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.begin_cycle)
    }
}

/// The reconstructed view of one recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Events seen, per kind (indexed by [`EventKind::index`]).
    pub event_counts: [u64; Event::NUM_KINDS],
    /// Largest retired-instruction stamp in the trace.
    pub final_instret: u64,
    /// Largest cycle stamp in the trace (0 when nothing reconfigured).
    pub final_cycle: u64,
    /// Hotspot promotions, in stream order.
    pub promotions: Vec<Promotion>,
    /// Per-scope episode reconstruction, in [`Scope`] order.
    pub scopes: Vec<ScopeAnalysis>,
    /// Per-CU configuration residency, in [`Cu::ALL`] order.
    pub residency: [CuResidency; MAX_CUS],
    /// Every reconfiguration, in stream order.
    pub reconfigs: Vec<Reconfig>,
    /// The BBV phase timeline.
    pub phases: PhaseTimeline,
    /// Stream-wide measurement means.
    pub headline: Headline,
    /// Warm-start / tuning-store activity.
    pub warm_start: WarmStartStats,
    /// Phase-distance-mapping prediction activity.
    pub pdm: PdmStats,
    /// Completed harness spans, in close order (spans left open at the
    /// end of the trace follow, flagged `open`, in begin order).
    pub spans: Vec<SpanSlice>,
    /// `SpanEnd` events with no matching open span — nonzero means a
    /// truncated or interleaved trace.
    pub span_mismatches: u64,
}

impl Analysis {
    /// Analyzes an in-memory event sequence.
    pub fn of<'a>(events: impl IntoIterator<Item = &'a Event>) -> Analysis {
        let mut analyzer = Analyzer::new();
        for event in events {
            analyzer.push(*event);
        }
        analyzer.finish()
    }

    /// Total events analyzed.
    pub fn total_events(&self) -> u64 {
        self.event_counts.iter().sum()
    }

    /// Events of `kind` analyzed.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.event_counts[kind.index()]
    }

    /// All episodes across all scopes, in scope-then-start order.
    pub fn episodes(&self) -> impl Iterator<Item = &Episode> {
        self.scopes.iter().flat_map(|s| s.episodes.iter())
    }

    /// Episodes with the given outcome.
    pub fn episode_count(&self, outcome: EpisodeOutcome) -> u64 {
        self.episodes().filter(|e| e.outcome == outcome).count() as u64
    }

    /// Drift retunes across all scopes.
    pub fn drift_retunes(&self) -> u64 {
        self.scopes.iter().map(|s| s.drift_retunes).sum()
    }

    /// Mean trials per converged episode (0 when none converged).
    pub fn mean_trials_to_converge(&self) -> f64 {
        let converged: Vec<&Episode> = self
            .episodes()
            .filter(|e| e.outcome == EpisodeOutcome::Converged)
            .collect();
        if converged.is_empty() {
            return 0.0;
        }
        converged.iter().map(|e| e.trials.len() as f64).sum::<f64>() / converged.len() as f64
    }

    /// Mean instruction span per converged episode (0 when none).
    pub fn mean_episode_span_instr(&self) -> f64 {
        let converged: Vec<&Episode> = self
            .episodes()
            .filter(|e| e.outcome == EpisodeOutcome::Converged)
            .collect();
        if converged.is_empty() {
            return 0.0;
        }
        converged.iter().map(|e| e.span_instr() as f64).sum::<f64>() / converged.len() as f64
    }
}

/// Per-scope open-episode state.
struct ScopeState {
    episodes: Vec<Episode>,
    open: Option<Episode>,
    drift_retunes: u64,
}

impl ScopeState {
    fn new() -> ScopeState {
        ScopeState {
            episodes: Vec::new(),
            open: None,
            drift_retunes: 0,
        }
    }

    fn close_open(&mut self, end_instret: u64, outcome: EpisodeOutcome) {
        if let Some(mut episode) = self.open.take() {
            episode.end_instret = end_instret.max(episode.started_instret);
            episode.outcome = outcome;
            self.episodes.push(episode);
        }
    }

    /// The open episode, opening an implicit one (configs = 0) for
    /// orphan steps in truncated traces.
    fn open_or_implicit(&mut self, scope: Scope, instret: u64) -> &mut Episode {
        if self.open.is_none() {
            self.open = Some(Episode {
                scope,
                started_instret: instret,
                configs: 0,
                trials: Vec::new(),
                end_instret: instret,
                outcome: EpisodeOutcome::InProgress,
                converged_ipc: None,
                converged_epi_nj: None,
            });
        }
        self.open.as_mut().expect("just ensured open")
    }
}

/// Per-CU residency accumulator.
struct CuState {
    residency: CuResidency,
    level: u8,
    since_cycle: u64,
    since_instret: u64,
}

impl CuState {
    fn new(cu: Cu) -> CuState {
        CuState {
            residency: CuResidency::new(cu),
            level: 0,
            since_cycle: 0,
            since_instret: 0,
        }
    }

    fn attribute(&mut self, upto_cycle: u64, upto_instret: u64) {
        let slot = &mut self.residency.levels[(self.level as usize).min(NUM_LEVELS - 1)];
        slot.cycles += upto_cycle.saturating_sub(self.since_cycle);
        slot.instret += upto_instret.saturating_sub(self.since_instret);
        self.since_cycle = upto_cycle.max(self.since_cycle);
        self.since_instret = upto_instret.max(self.since_instret);
    }
}

/// In-progress phase-segment accumulator.
struct SegmentState {
    phase: u32,
    first_index: u64,
    last_index: u64,
    start_instret: u64,
    end_instret: u64,
    sum_ipc: f64,
    sum_epi_nj: f64,
    stable: u64,
    count: u64,
}

impl SegmentState {
    fn finish(self) -> PhaseSegment {
        PhaseSegment {
            phase: self.phase,
            first_index: self.first_index,
            last_index: self.last_index,
            start_instret: self.start_instret,
            end_instret: self.end_instret,
            mean_ipc: self.sum_ipc / self.count as f64,
            mean_epi_nj: self.sum_epi_nj / self.count as f64,
            stable: self.stable,
        }
    }
}

/// Streaming trace analyzer: [`Analyzer::push`] events in recording
/// order, then [`Analyzer::finish`].
pub struct Analyzer {
    counts: [u64; Event::NUM_KINDS],
    final_instret: u64,
    final_cycle: u64,
    promotions: Vec<Promotion>,
    scopes: BTreeMap<Scope, ScopeState>,
    cus: [CuState; MAX_CUS],
    reconfigs: Vec<Reconfig>,
    segments: Vec<PhaseSegment>,
    current_segment: Option<SegmentState>,
    intervals: u64,
    stable_intervals: u64,
    sum_interval_ipc: f64,
    sum_interval_epi: f64,
    sum_converged_ipc: f64,
    sum_converged_epi: f64,
    convergences: u64,
    warm_start: WarmStartStats,
    pdm: PdmStats,
    /// Open spans: (name, begin_instret, begin_cycle); depth is the
    /// stack position.
    span_stack: Vec<(String, u64, u64)>,
    spans: Vec<SpanSlice>,
    span_mismatches: u64,
}

impl Default for Analyzer {
    fn default() -> Analyzer {
        Analyzer::new()
    }
}

impl Analyzer {
    /// An analyzer with no events seen yet.
    pub fn new() -> Analyzer {
        Analyzer {
            counts: [0; Event::NUM_KINDS],
            final_instret: 0,
            final_cycle: 0,
            promotions: Vec::new(),
            scopes: BTreeMap::new(),
            cus: Cu::ALL.map(CuState::new),
            reconfigs: Vec::new(),
            segments: Vec::new(),
            current_segment: None,
            intervals: 0,
            stable_intervals: 0,
            sum_interval_ipc: 0.0,
            sum_interval_epi: 0.0,
            sum_converged_ipc: 0.0,
            sum_converged_epi: 0.0,
            convergences: 0,
            warm_start: WarmStartStats::default(),
            pdm: PdmStats::default(),
            span_stack: Vec::new(),
            spans: Vec::new(),
            span_mismatches: 0,
        }
    }

    /// Feeds one event, in recording order.
    pub fn push(&mut self, event: Event) {
        self.counts[event.kind().index()] += 1;
        match event {
            Event::Reconfigured { cycle, .. } => self.final_cycle = self.final_cycle.max(cycle),
            // Span stamps come from the harness layer (a fleet wave's
            // cumulative counters, say), not this run's machine, so they
            // must not stretch the run's counter span or its residency
            // attribution.
            Event::SpanBegin { .. } | Event::SpanEnd { .. } => {}
            other => self.final_instret = self.final_instret.max(other.timestamp()),
        }
        match event {
            Event::HotspotPromoted {
                method,
                invocations,
                instret,
            } => self.promotions.push(Promotion {
                method,
                invocations,
                instret,
            }),
            Event::TuningStarted {
                scope,
                configs,
                instret,
            } => {
                let state = self.scopes.entry(scope).or_insert_with(ScopeState::new);
                // A restart abandons whatever was in flight.
                state.close_open(instret, EpisodeOutcome::Abandoned);
                state.open = Some(Episode {
                    scope,
                    started_instret: instret,
                    configs,
                    trials: Vec::new(),
                    end_instret: instret,
                    outcome: EpisodeOutcome::InProgress,
                    converged_ipc: None,
                    converged_epi_nj: None,
                });
            }
            Event::TuningStep {
                scope,
                trial,
                ipc,
                epi_nj,
                instret,
            } => {
                let state = self.scopes.entry(scope).or_insert_with(ScopeState::new);
                let episode = state.open_or_implicit(scope, instret);
                episode.trials.push(Trial {
                    trial,
                    ipc,
                    epi_nj,
                    instret,
                });
                episode.end_instret = episode.end_instret.max(instret);
            }
            Event::TuningConverged {
                scope,
                trials: _,
                ipc,
                epi_nj,
                instret,
            } => {
                self.sum_converged_ipc += ipc;
                self.sum_converged_epi += epi_nj;
                self.convergences += 1;
                let state = self.scopes.entry(scope).or_insert_with(ScopeState::new);
                let episode = state.open_or_implicit(scope, instret);
                episode.converged_ipc = Some(ipc);
                episode.converged_epi_nj = Some(epi_nj);
                state.close_open(instret, EpisodeOutcome::Converged);
            }
            Event::Reconfigured {
                cu,
                from,
                to,
                cause,
                cycle,
            } => {
                self.reconfigs.push(Reconfig {
                    cu,
                    from,
                    to,
                    cause,
                    cycle,
                });
                let final_instret = self.final_instret;
                let state = &mut self.cus[cu.index()];
                if state.level != from {
                    state.residency.level_mismatches += 1;
                    // Trust the machine's `from` for attribution.
                    state.level = from;
                }
                state.attribute(cycle, final_instret);
                state.level = to;
                state.residency.reconfigs += 1;
                state.residency.by_cause[cause as usize] += 1;
            }
            Event::DriftRetune { scope, instret, .. } => {
                let state = self.scopes.entry(scope).or_insert_with(ScopeState::new);
                state.drift_retunes += 1;
                state.close_open(instret, EpisodeOutcome::Abandoned);
            }
            Event::IntervalSample {
                phase,
                index,
                ipc,
                epi_nj,
                stable,
                instret,
            } => {
                self.intervals += 1;
                self.stable_intervals += u64::from(stable);
                self.sum_interval_ipc += ipc;
                self.sum_interval_epi += epi_nj;
                let continues = self
                    .current_segment
                    .as_ref()
                    .is_some_and(|s| s.phase == phase && index == s.last_index + 1);
                if continues {
                    let seg = self.current_segment.as_mut().expect("continuing segment");
                    seg.last_index = index;
                    seg.end_instret = instret;
                    seg.sum_ipc += ipc;
                    seg.sum_epi_nj += epi_nj;
                    seg.stable += u64::from(stable);
                    seg.count += 1;
                } else {
                    if let Some(done) = self.current_segment.take() {
                        self.segments.push(done.finish());
                    }
                    self.current_segment = Some(SegmentState {
                        phase,
                        first_index: index,
                        last_index: index,
                        start_instret: instret,
                        end_instret: instret,
                        sum_ipc: ipc,
                        sum_epi_nj: epi_nj,
                        stable: u64::from(stable),
                        count: 1,
                    });
                }
            }
            Event::WarmStartHit { trials_saved, .. } => {
                self.warm_start.hits += 1;
                self.warm_start.trials_saved += u64::from(trials_saved);
            }
            Event::WarmStartMiss { .. } => self.warm_start.misses += 1,
            Event::StorePublish { .. } => self.warm_start.publishes += 1,
            Event::PdmPredictHit { trials_saved, .. } => {
                self.pdm.hits += 1;
                self.pdm.trials_saved += u64::from(trials_saved);
            }
            Event::PdmPredictMiss { .. } => self.pdm.misses += 1,
            Event::SpanBegin {
                name,
                instret,
                cycle,
            } => {
                self.span_stack
                    .push((name.as_str().to_string(), instret, cycle));
            }
            Event::SpanEnd {
                name,
                instret,
                cycle,
            } => {
                // Close the innermost open span with this name; an end
                // with no matching begin is counted, not fatal.
                let wanted = name.as_str();
                match self.span_stack.iter().rposition(|(n, _, _)| n == wanted) {
                    Some(pos) => {
                        let (span_name, begin_instret, begin_cycle) = self.span_stack.remove(pos);
                        self.spans.push(SpanSlice {
                            name: span_name,
                            depth: pos as u32,
                            begin_instret,
                            begin_cycle,
                            end_instret: instret.max(begin_instret),
                            end_cycle: cycle.max(begin_cycle),
                            open: false,
                        });
                    }
                    None => self.span_mismatches += 1,
                }
            }
        }
    }

    /// Closes open state and returns the finished [`Analysis`].
    pub fn finish(mut self) -> Analysis {
        if let Some(done) = self.current_segment.take() {
            self.segments.push(done.finish());
        }
        let final_instret = self.final_instret;
        let final_cycle = self.final_cycle;
        let scopes = self
            .scopes
            .into_iter()
            .map(|(scope, mut state)| {
                state.close_open(final_instret, EpisodeOutcome::InProgress);
                ScopeAnalysis {
                    scope,
                    episodes: state.episodes,
                    drift_retunes: state.drift_retunes,
                }
            })
            .collect();
        let residency = self.cus.map(|mut state| {
            state.attribute(final_cycle, final_instret);
            state.residency
        });
        // Spans still open when the trace ends are reported as
        // zero-progress slices, flagged `open`, in begin order.
        let mut spans = self.spans;
        for (depth, (name, begin_instret, begin_cycle)) in self.span_stack.into_iter().enumerate() {
            spans.push(SpanSlice {
                name,
                depth: depth as u32,
                begin_instret,
                begin_cycle,
                end_instret: begin_instret,
                end_cycle: begin_cycle,
                open: true,
            });
        }
        let headline = Headline {
            mean_interval_ipc: mean(self.sum_interval_ipc, self.intervals),
            mean_interval_epi_nj: mean(self.sum_interval_epi, self.intervals),
            mean_converged_ipc: mean(self.sum_converged_ipc, self.convergences),
            mean_converged_epi_nj: mean(self.sum_converged_epi, self.convergences),
            interval_samples: self.intervals,
            convergences: self.convergences,
        };
        Analysis {
            event_counts: self.counts,
            final_instret,
            final_cycle,
            promotions: self.promotions,
            scopes,
            residency,
            reconfigs: self.reconfigs,
            phases: PhaseTimeline {
                segments: self.segments,
                intervals: self.intervals,
                stable_intervals: self.stable_intervals,
            },
            headline,
            warm_start: self.warm_start,
            pdm: self.pdm,
            spans,
            span_mismatches: self.span_mismatches,
        }
    }
}

fn mean(sum: f64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(method: u32) -> Scope {
        Scope::Hotspot { method }
    }

    /// A canonical lifecycle: promote, tune over three trials, converge,
    /// apply, drift, retune, trace ends mid-episode.
    fn lifecycle() -> Vec<Event> {
        vec![
            Event::HotspotPromoted {
                method: 3,
                invocations: 10,
                instret: 100,
            },
            Event::TuningStarted {
                scope: hs(3),
                configs: 3,
                instret: 120,
            },
            Event::TuningStep {
                scope: hs(3),
                trial: 0,
                ipc: 1.0,
                epi_nj: 0.5,
                instret: 200,
            },
            Event::Reconfigured {
                cu: Cu::L1d,
                from: 0,
                to: 1,
                cause: ReconfigCause::Trial,
                cycle: 250,
            },
            Event::TuningStep {
                scope: hs(3),
                trial: 1,
                ipc: 1.2,
                epi_nj: 0.4,
                instret: 300,
            },
            Event::Reconfigured {
                cu: Cu::L1d,
                from: 1,
                to: 2,
                cause: ReconfigCause::Trial,
                cycle: 350,
            },
            Event::TuningStep {
                scope: hs(3),
                trial: 2,
                ipc: 0.9,
                epi_nj: 0.6,
                instret: 400,
            },
            Event::TuningConverged {
                scope: hs(3),
                trials: 3,
                ipc: 1.2,
                epi_nj: 0.4,
                instret: 420,
            },
            Event::Reconfigured {
                cu: Cu::L1d,
                from: 2,
                to: 1,
                cause: ReconfigCause::Apply,
                cycle: 500,
            },
            Event::DriftRetune {
                scope: hs(3),
                drift: 0.3,
                instret: 900,
            },
            Event::TuningStarted {
                scope: hs(3),
                configs: 3,
                instret: 950,
            },
            Event::TuningStep {
                scope: hs(3),
                trial: 0,
                ipc: 1.1,
                epi_nj: 0.45,
                instret: 1000,
            },
        ]
    }

    #[test]
    fn reconstructs_the_episode_lifecycle() {
        let analysis = Analysis::of(&lifecycle());
        assert_eq!(analysis.scopes.len(), 1);
        let scope = &analysis.scopes[0];
        assert_eq!(scope.scope, hs(3));
        assert_eq!(scope.drift_retunes, 1);
        assert_eq!(scope.episodes.len(), 2);

        let first = &scope.episodes[0];
        assert_eq!(first.outcome, EpisodeOutcome::Converged);
        assert_eq!(first.trials.len(), 3);
        assert_eq!(first.started_instret, 120);
        assert_eq!(first.end_instret, 420);
        assert_eq!(first.converged_ipc, Some(1.2));

        let second = &scope.episodes[1];
        assert_eq!(second.outcome, EpisodeOutcome::InProgress);
        assert_eq!(second.trials.len(), 1);
        assert_eq!(second.end_instret, 1000, "closed at end of trace");

        assert_eq!(analysis.promotions.len(), 1);
        assert_eq!(analysis.episode_count(EpisodeOutcome::Converged), 1);
        assert_eq!(analysis.mean_trials_to_converge(), 3.0);
        assert_eq!(analysis.final_instret, 1000);
        assert_eq!(analysis.final_cycle, 500);
    }

    #[test]
    fn residency_attributes_cycles_per_level() {
        let analysis = Analysis::of(&lifecycle());
        let l1d = &analysis.residency[Cu::L1d.index()];
        assert_eq!(l1d.reconfigs, 3);
        assert_eq!(l1d.by_cause, [2, 1, 0]);
        assert_eq!(l1d.level_mismatches, 0);
        // Level 0 from cycle 0..250, level 1 from 250..350, level 2 from
        // 350..500, then level 1 from 500..final_cycle(500) = 0.
        assert_eq!(l1d.levels[0].cycles, 250);
        assert_eq!(l1d.levels[1].cycles, 100);
        assert_eq!(l1d.levels[2].cycles, 150);
        assert_eq!(l1d.levels[3].cycles, 0);
        assert_eq!(l1d.total_cycles(), 500);
        // Untouched CUs spend the whole trace at level 0.
        let l2 = &analysis.residency[Cu::L2.index()];
        assert_eq!(l2.reconfigs, 0);
        assert_eq!(l2.levels[0].cycles, 500);
    }

    #[test]
    fn restart_without_convergence_abandons() {
        let events = vec![
            Event::TuningStarted {
                scope: hs(1),
                configs: 4,
                instret: 10,
            },
            Event::TuningStarted {
                scope: hs(1),
                configs: 4,
                instret: 50,
            },
            Event::TuningConverged {
                scope: hs(1),
                trials: 4,
                ipc: 1.0,
                epi_nj: 0.3,
                instret: 90,
            },
        ];
        let analysis = Analysis::of(&events);
        let episodes = &analysis.scopes[0].episodes;
        assert_eq!(episodes.len(), 2);
        assert_eq!(episodes[0].outcome, EpisodeOutcome::Abandoned);
        assert_eq!(episodes[0].end_instret, 50);
        assert_eq!(episodes[1].outcome, EpisodeOutcome::Converged);
    }

    #[test]
    fn phase_segments_split_on_phase_change_and_gaps() {
        let sample = |phase, index, stable, instret| Event::IntervalSample {
            phase,
            index,
            ipc: 2.0,
            epi_nj: 0.5,
            stable,
            instret,
        };
        let events = vec![
            sample(0, 0, false, 100),
            sample(0, 1, true, 200),
            sample(1, 2, false, 300),
            sample(1, 3, true, 400),
            sample(1, 4, true, 500),
            // Index gap: same phase but a new segment.
            sample(1, 6, false, 700),
        ];
        let analysis = Analysis::of(&events);
        let t = &analysis.phases;
        assert_eq!(t.intervals, 6);
        assert_eq!(t.stable_intervals, 3);
        assert_eq!(t.segments.len(), 3);
        assert_eq!(t.segments[0].intervals(), 2);
        assert_eq!(t.segments[1].intervals(), 3);
        assert_eq!(t.segments[1].stable, 2);
        assert_eq!(t.segments[2].first_index, 6);
        assert_eq!(t.distinct_phases(), 2);
        assert_eq!(analysis.headline.mean_interval_ipc, 2.0);
    }

    #[test]
    fn orphan_steps_open_an_implicit_episode() {
        let events = vec![Event::TuningStep {
            scope: hs(9),
            trial: 2,
            ipc: 1.5,
            epi_nj: 0.2,
            instret: 40,
        }];
        let analysis = Analysis::of(&events);
        let ep = &analysis.scopes[0].episodes[0];
        assert_eq!(ep.configs, 0, "implicit episode has no announced configs");
        assert_eq!(ep.outcome, EpisodeOutcome::InProgress);
        assert_eq!(ep.trials.len(), 1);
    }

    #[test]
    fn level_mismatch_is_counted_not_fatal() {
        let events = vec![Event::Reconfigured {
            cu: Cu::L2,
            from: 2, // analyzer thinks level 0
            to: 3,
            cause: ReconfigCause::Trial,
            cycle: 100,
        }];
        let analysis = Analysis::of(&events);
        let l2 = &analysis.residency[Cu::L2.index()];
        assert_eq!(l2.level_mismatches, 1);
        // Attribution trusts the recorded `from` level.
        assert_eq!(l2.levels[2].cycles, 100);
    }

    #[test]
    fn spans_nest_by_begin_end_pairing() {
        use ace_telemetry::SpanName;
        let events = vec![
            Event::SpanBegin {
                name: SpanName::new("pass"),
                instret: 0,
                cycle: 0,
            },
            Event::SpanBegin {
                name: SpanName::new("wave"),
                instret: 100,
                cycle: 200,
            },
            Event::SpanEnd {
                name: SpanName::new("wave"),
                instret: 500,
                cycle: 900,
            },
            Event::SpanBegin {
                name: SpanName::new("wave"),
                instret: 500,
                cycle: 900,
            },
            // `pass` and the second `wave` stay open at end of trace.
        ];
        let analysis = Analysis::of(&events);
        assert_eq!(analysis.spans.len(), 3);
        let closed = &analysis.spans[0];
        assert_eq!(closed.name, "wave");
        assert_eq!(closed.depth, 1);
        assert_eq!((closed.begin_instret, closed.end_instret), (100, 500));
        assert_eq!(closed.span_cycles(), 700);
        assert!(!closed.open);
        assert!(analysis.spans[1..].iter().all(|s| s.open));
        assert_eq!(analysis.spans[1].name, "pass");
        assert_eq!(analysis.span_mismatches, 0);
        // Span stamps never stretch the run's counter span.
        assert_eq!(analysis.final_instret, 0);
        assert_eq!(analysis.final_cycle, 0);

        let orphan = Analysis::of(&[Event::SpanEnd {
            name: SpanName::new("nope"),
            instret: 1,
            cycle: 2,
        }]);
        assert_eq!(orphan.span_mismatches, 1);
        assert!(orphan.spans.is_empty());
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let analysis = Analysis::of(&[]);
        assert_eq!(analysis.total_events(), 0);
        assert_eq!(analysis.scopes.len(), 0);
        assert_eq!(analysis.headline.ipc(), 0.0);
        assert_eq!(analysis.phases.segments.len(), 0);
        assert_eq!(analysis.residency[0].total_cycles(), 0);
    }
}
