//! Streaming a recorded trace file into an [`Analysis`].
//!
//! Thin glue over [`ace_telemetry::EventStream`]: events flow from the
//! reader straight into the [`Analyzer`] one at a time, so analyzing a
//! trace never materializes the event vector. Strict by default — a
//! malformed line aborts with its 1-based line number ([`StreamError`]),
//! because a trace that half-parses would silently skew every statistic
//! downstream.

use crate::analysis::{Analysis, Analyzer};
use ace_telemetry::{EventStream, StreamError};
use std::io::BufRead;
use std::path::Path;

/// Streams the JSONL trace at `path` into an [`Analysis`].
///
/// # Errors
///
/// Returns [`StreamError::Io`] when the file cannot be opened or read,
/// and [`StreamError::Parse`] (with the offending line number) when a
/// line is not a valid event.
pub fn analyze_file(path: impl AsRef<Path>) -> Result<Analysis, StreamError> {
    consume(EventStream::open(path)?)
}

/// Streams events from any buffered reader into an [`Analysis`].
///
/// # Errors
///
/// Same as [`analyze_file`].
pub fn analyze_reader(reader: impl BufRead) -> Result<Analysis, StreamError> {
    consume(EventStream::new(reader))
}

fn consume(stream: EventStream<impl BufRead>) -> Result<Analysis, StreamError> {
    let mut analyzer = Analyzer::new();
    for event in stream {
        analyzer.push(event?);
    }
    Ok(analyzer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_telemetry::{Event, Scope};

    #[test]
    fn analyze_reader_matches_in_memory_analysis() {
        let events = [
            Event::TuningStarted {
                scope: Scope::Hotspot { method: 2 },
                configs: 4,
                instret: 10,
            },
            Event::TuningConverged {
                scope: Scope::Hotspot { method: 2 },
                trials: 4,
                ipc: 1.5,
                epi_nj: 0.25,
                instret: 90,
            },
        ];
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", serde_json::to_string(e).unwrap()))
            .collect();
        let streamed = analyze_reader(text.as_bytes()).unwrap();
        assert_eq!(streamed, Analysis::of(&events));
    }

    #[test]
    fn malformed_line_aborts_with_its_line_number() {
        let text =
            "{\"HotspotPromoted\":{\"method\":1,\"invocations\":1,\"instret\":1}}\nnot json\n";
        let err = analyze_reader(text.as_bytes()).unwrap_err();
        match err {
            StreamError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = analyze_file("/nonexistent/trace.jsonl").unwrap_err();
        assert!(matches!(err, StreamError::Io(_)));
    }
}
