//! Observability time-series analysis (`ace trace metrics`).
//!
//! The fleet harness writes an obs stream: one [`ObsRecord`] per wave,
//! each a cumulative [`MetricsSnapshot`] keyed by `(pass, wave)`. This
//! module answers the two questions CI and operators ask of such a
//! stream:
//!
//! * *what moved between wave A and wave B?* — [`metrics_report`]
//!   renders the top-N largest deltas (plus histogram quantiles) over
//!   any wave range,
//! * *did this run regress against that one?* — [`diff_obs`] compares
//!   two streams' snapshots at matching waves under the same
//!   [`DiffThresholds`] machinery `ace trace diff` uses, so a recorded
//!   obs stream is a usable fleet-health baseline with exit-code
//!   semantics.
//!
//! Obs records carry only wave-indexed architectural data — never
//! wall-clock — so reports and diffs are byte-identical across `--jobs`
//! widths, the same contract the rest of the trace tooling holds.

use crate::diff::{DiffLine, DiffReport, DiffThresholds};
use ace_telemetry::{read_obs_jsonl, MetricsSnapshot, ObsRecord};
use std::fmt::Write as _;

/// A parsed obs stream: wave-ordered records, possibly spanning several
/// passes (e.g. `cold` then `warm`).
#[derive(Debug, Clone, Default)]
pub struct ObsSeries {
    /// Records in file order (the harness writes them wave-ordered
    /// within each pass).
    pub records: Vec<ObsRecord>,
}

impl ObsSeries {
    /// Parses a JSONL obs stream.
    pub fn from_reader(r: impl std::io::Read) -> Result<ObsSeries, String> {
        Ok(ObsSeries {
            records: read_obs_jsonl(r)?,
        })
    }

    /// Reads and parses the obs stream at `path`.
    pub fn load(path: &str) -> Result<ObsSeries, String> {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        ObsSeries::from_reader(std::io::BufReader::new(file))
    }

    /// Pass names in first-appearance order.
    pub fn passes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.pass.as_str()) {
                out.push(&r.pass);
            }
        }
        out
    }

    /// The records belonging to `pass`, or all records when `None`.
    pub fn pass_records(&self, pass: Option<&str>) -> Vec<&ObsRecord> {
        self.records
            .iter()
            .filter(|r| pass.is_none_or(|p| r.pass == p))
            .collect()
    }

    /// The record for `wave` within `pass` (first match in file order).
    pub fn at_wave(&self, pass: Option<&str>, wave: u64) -> Option<&ObsRecord> {
        self.pass_records(pass).into_iter().find(|r| r.wave == wave)
    }
}

/// One ranked delta row in a [`metrics_report`].
#[derive(Debug, Clone, PartialEq)]
struct DeltaRow {
    name: String,
    kind: &'static str,
    from: f64,
    to: f64,
}

impl DeltaRow {
    fn magnitude(&self) -> f64 {
        let delta = (self.to - self.from).abs();
        if self.from == 0.0 {
            delta
        } else {
            delta / self.from.abs()
        }
    }
}

/// Renders the top-`top` metric movements between the records at waves
/// `from` and `to` of `pass` (defaults: first and last wave present).
///
/// Rows are ranked by relative movement (absolute movement where the
/// starting value is zero), ties broken by name, so the report is a
/// deterministic function of the stream. Histograms additionally show
/// p50/p90 at the destination wave.
pub fn metrics_report(
    series: &ObsSeries,
    pass: Option<&str>,
    from: Option<u64>,
    to: Option<u64>,
    top: usize,
) -> Result<String, String> {
    let records = series.pass_records(pass);
    if records.is_empty() {
        return Err(match pass {
            Some(p) => format!("no obs records for pass {p:?}"),
            None => "no obs records in stream".to_string(),
        });
    }
    let first = records.first().expect("non-empty");
    let last = records.last().expect("non-empty");
    let from_wave = from.unwrap_or(first.wave);
    let to_wave = to.unwrap_or(last.wave);
    let rec_from = series
        .at_wave(pass, from_wave)
        .ok_or_else(|| format!("wave {from_wave} not present in stream"))?;
    let rec_to = series
        .at_wave(pass, to_wave)
        .ok_or_else(|| format!("wave {to_wave} not present in stream"))?;

    let delta = rec_to.metrics.delta_since(&rec_from.metrics);
    let mut rows: Vec<DeltaRow> = Vec::new();
    for name in delta.counters.keys() {
        let a = rec_from.metrics.counters.get(name).copied().unwrap_or(0) as f64;
        let b = rec_to.metrics.counters.get(name).copied().unwrap_or(0) as f64;
        rows.push(DeltaRow {
            name: name.clone(),
            kind: "counter",
            from: a,
            to: b,
        });
    }
    for name in delta.gauges.keys() {
        let a = rec_from.metrics.gauges.get(name).copied().unwrap_or(0.0);
        let b = rec_to.metrics.gauges.get(name).copied().unwrap_or(0.0);
        rows.push(DeltaRow {
            name: name.clone(),
            kind: "gauge",
            from: a,
            to: b,
        });
    }
    rows.sort_by(|x, y| {
        y.magnitude()
            .partial_cmp(&x.magnitude())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(&y.name))
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "obs metrics: pass {} wave {from_wave} -> {to_wave} ({} records, {} counters, {} gauges, {} histograms)",
        rec_to.pass,
        records.len(),
        rec_to.metrics.counters.len(),
        rec_to.metrics.gauges.len(),
        rec_to.metrics.histograms.len(),
    );
    let shown = rows.len().min(top);
    let _ = writeln!(out, "top {shown} movements:");
    for row in rows.iter().take(top) {
        let _ = writeln!(
            out,
            "  {:<9} {:<28} {:>12.4} -> {:<12.4} delta {:>+12.4}",
            row.kind,
            row.name,
            row.from,
            row.to,
            row.to - row.from,
        );
    }
    if !rec_to.metrics.histograms.is_empty() {
        let _ = writeln!(out, "histograms at wave {to_wave}:");
        for (name, h) in &rec_to.metrics.histograms {
            let _ = writeln!(
                out,
                "  {:<28} n={} mean={:.3} p50={:.3} p90={:.3}",
                name,
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
            );
        }
    }
    Ok(out)
}

/// Gauge regression direction, inferred from the metric name.
enum GaugeDirection {
    /// A drop is a regression (hit rates, IPC, throughput).
    Drop,
    /// A rise is a regression (shed rates, EPI, trials, latencies).
    Rise,
    /// Movement in either direction is a regression.
    Both,
}

/// Classifies a gauge by name so [`diff_obs`] can judge it in the
/// direction that matters: quality metrics regress when they drop,
/// cost metrics regress when they rise, everything else both ways.
fn gauge_direction(name: &str) -> GaugeDirection {
    const DROP_BAD: [&str; 3] = ["hit_rate", "ipc", "per_sec"];
    const RISE_BAD: [&str; 4] = ["shed", "epi", "trials", "_ms"];
    if DROP_BAD.iter().any(|n| name.contains(n)) {
        GaugeDirection::Drop
    } else if RISE_BAD.iter().any(|n| name.contains(n)) {
        GaugeDirection::Rise
    } else {
        GaugeDirection::Both
    }
}

/// Relative change from `a` to `b` with the `a == 0` edge mapped to 0
/// (both zero) or 1 (appeared from nothing) — same convention as
/// [`crate::diff`].
fn rel_change(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (b - a) / a
    }
}

/// Compares two snapshots (baseline `a`, candidate `b`) under
/// `thresholds`, producing the same [`DiffReport`] shape as trace
/// diffing so callers share rendering and exit-code logic.
///
/// Counters and histogram counts flag on relative change in either
/// direction beyond `max_count_delta`. Gauges flag directionally per
/// the metric name: drop-bad gauges against `max_ipc_drop`,
/// rise-bad against `max_epi_rise` (trial-count gauges against
/// `max_convergence_slowdown`), both-way against `max_count_delta`.
pub fn diff_obs(
    a: &MetricsSnapshot,
    b: &MetricsSnapshot,
    thresholds: &DiffThresholds,
) -> DiffReport {
    let mut lines = Vec::new();

    let counter_names: Vec<&String> = {
        let mut names: Vec<&String> = a.counters.keys().chain(b.counters.keys()).collect();
        names.sort();
        names.dedup();
        names
    };
    for name in counter_names {
        let va = a.counters.get(name).copied().unwrap_or(0) as f64;
        let vb = b.counters.get(name).copied().unwrap_or(0) as f64;
        let delta = rel_change(va, vb);
        lines.push(DiffLine {
            metric: format!("counter {name}"),
            a: va,
            b: vb,
            delta,
            threshold: thresholds.max_count_delta,
            regressed: delta.abs() > thresholds.max_count_delta,
        });
    }

    let gauge_names: Vec<&String> = {
        let mut names: Vec<&String> = a.gauges.keys().chain(b.gauges.keys()).collect();
        names.sort();
        names.dedup();
        names
    };
    for name in gauge_names {
        let va = a.gauges.get(name).copied().unwrap_or(0.0);
        let vb = b.gauges.get(name).copied().unwrap_or(0.0);
        let delta = rel_change(va, vb);
        let (threshold, regressed) = match gauge_direction(name) {
            GaugeDirection::Drop => (thresholds.max_ipc_drop, -delta > thresholds.max_ipc_drop),
            GaugeDirection::Rise => {
                let limit = if name.contains("trials") {
                    thresholds.max_convergence_slowdown
                } else {
                    thresholds.max_epi_rise
                };
                (limit, delta > limit)
            }
            GaugeDirection::Both => (
                thresholds.max_count_delta,
                delta.abs() > thresholds.max_count_delta,
            ),
        };
        lines.push(DiffLine {
            metric: format!("gauge {name}"),
            a: va,
            b: vb,
            delta,
            threshold,
            regressed,
        });
    }

    let histogram_names: Vec<&String> = {
        let mut names: Vec<&String> = a.histograms.keys().chain(b.histograms.keys()).collect();
        names.sort();
        names.dedup();
        names
    };
    for name in histogram_names {
        let va = a.histograms.get(name).map_or(0.0, |h| h.count as f64);
        let vb = b.histograms.get(name).map_or(0.0, |h| h.count as f64);
        let delta = rel_change(va, vb);
        lines.push(DiffLine {
            metric: format!("histogram {name} count"),
            a: va,
            b: vb,
            delta,
            threshold: thresholds.max_count_delta,
            regressed: delta.abs() > thresholds.max_count_delta,
        });
    }

    DiffReport { lines }
}

/// Diffs two obs streams at their final snapshots of `pass` (or of the
/// whole stream when `pass` is `None`): baseline `a`, candidate `b`.
pub fn diff_obs_series(
    a: &ObsSeries,
    b: &ObsSeries,
    pass: Option<&str>,
    thresholds: &DiffThresholds,
) -> Result<DiffReport, String> {
    let last_of = |s: &'_ ObsSeries, which: &str| -> Result<MetricsSnapshot, String> {
        s.pass_records(pass)
            .last()
            .map(|r| r.metrics.clone())
            .ok_or_else(|| match pass {
                Some(p) => format!("{which}: no obs records for pass {p:?}"),
                None => format!("{which}: no obs records in stream"),
            })
    };
    let snap_a = last_of(a, "baseline")?;
    let snap_b = last_of(b, "candidate")?;
    Ok(diff_obs(&snap_a, &snap_b, thresholds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_telemetry::Metrics;

    fn record(pass: &str, wave: u64, hits: u64, hit_rate: f64) -> ObsRecord {
        let m = Metrics::default();
        m.counter("fleet.warm_hits").add(hits);
        m.counter("fleet.machines").add(wave * 10);
        m.gauge("fleet.hit_rate").set(hit_rate);
        m.gauge("fleet.shed_rate").set(0.01);
        let h = m.histogram("fleet.ipc_p", &[1.0, 2.0, 4.0]);
        for _ in 0..wave {
            h.record(1.5);
        }
        ObsRecord {
            pass: pass.to_string(),
            wave,
            metrics: m.snapshot(),
        }
    }

    fn series(passes: &[(&str, u64, u64, f64)]) -> ObsSeries {
        ObsSeries {
            records: passes
                .iter()
                .map(|&(p, w, hits, rate)| record(p, w, hits, rate))
                .collect(),
        }
    }

    #[test]
    fn series_selects_passes_and_waves() {
        let s = series(&[
            ("cold", 1, 0, 0.0),
            ("cold", 2, 3, 0.1),
            ("warm", 1, 8, 0.8),
        ]);
        assert_eq!(s.passes(), vec!["cold", "warm"]);
        assert_eq!(s.pass_records(Some("cold")).len(), 2);
        assert_eq!(s.pass_records(None).len(), 3);
        assert_eq!(s.at_wave(Some("warm"), 1).unwrap().pass, "warm");
        assert!(s.at_wave(Some("warm"), 2).is_none());
    }

    #[test]
    fn metrics_report_ranks_largest_movers_first() {
        let s = series(&[("cold", 1, 10, 0.5), ("cold", 4, 11, 0.52)]);
        let text = metrics_report(&s, Some("cold"), None, None, 10).unwrap();
        assert!(text.contains("wave 1 -> 4"), "{text}");
        // machines went 10 -> 40 (3x), hits 10 -> 11 (10%): machines first.
        let machines = text.find("fleet.machines").unwrap();
        let hits = text.find("fleet.warm_hits").unwrap();
        assert!(machines < hits, "{text}");
        assert!(text.contains("p50"), "{text}");
        // Deterministic rendering.
        let again = metrics_report(&s, Some("cold"), None, None, 10).unwrap();
        assert_eq!(text, again);
    }

    #[test]
    fn metrics_report_errors_on_missing_wave() {
        let s = series(&[("cold", 1, 0, 0.0)]);
        assert!(metrics_report(&s, None, Some(9), None, 5).is_err());
        assert!(metrics_report(&s, Some("nope"), None, None, 5).is_err());
    }

    #[test]
    fn diff_obs_flags_hit_rate_drop_not_rise() {
        let t = DiffThresholds::default();
        let base = record("warm", 4, 100, 0.90).metrics;
        let worse = record("warm", 4, 100, 0.50).metrics;
        let report = diff_obs(&base, &worse, &t);
        assert!(report
            .regressions()
            .any(|l| l.metric == "gauge fleet.hit_rate"));

        let better = record("warm", 4, 100, 0.99).metrics;
        let report = diff_obs(&base, &better, &t);
        assert!(!report.regressed(), "{}", report.render());
    }

    #[test]
    fn diff_obs_flags_counter_change_both_ways() {
        let t = DiffThresholds::default();
        let base = record("warm", 4, 100, 0.9).metrics;
        for hits in [50, 200] {
            let other = record("warm", 4, hits, 0.9).metrics;
            let report = diff_obs(&base, &other, &t);
            assert!(report
                .regressions()
                .any(|l| l.metric == "counter fleet.warm_hits"));
        }
    }

    #[test]
    fn diff_obs_flags_shed_rise_and_histogram_count() {
        let t = DiffThresholds::default();
        let base = record("warm", 4, 100, 0.9).metrics;
        let mut shed = base.clone();
        shed.gauges.insert("fleet.shed_rate".to_string(), 0.5);
        let report = diff_obs(&base, &shed, &t);
        assert!(report
            .regressions()
            .any(|l| l.metric == "gauge fleet.shed_rate"));

        let fewer = record("warm", 1, 100, 0.9).metrics; // histogram n=1 vs 4
        let report = diff_obs(&base, &fewer, &t);
        assert!(report
            .regressions()
            .any(|l| l.metric == "histogram fleet.ipc_p count"));
    }

    #[test]
    fn diff_obs_series_uses_final_snapshots() {
        let t = DiffThresholds::default();
        let a = series(&[("warm", 1, 10, 0.5), ("warm", 2, 100, 0.9)]);
        let b = series(&[("warm", 1, 10, 0.5), ("warm", 2, 100, 0.9)]);
        let report = diff_obs_series(&a, &b, Some("warm"), &t).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert!(diff_obs_series(&a, &b, Some("nope"), &t).is_err());
    }

    #[test]
    fn gauge_direction_classification() {
        assert!(matches!(
            gauge_direction("fleet.hit_rate"),
            GaugeDirection::Drop
        ));
        assert!(matches!(
            gauge_direction("fleet.machines_per_sec"),
            GaugeDirection::Drop
        ));
        assert!(matches!(
            gauge_direction("fleet.shed_rate"),
            GaugeDirection::Rise
        ));
        assert!(matches!(
            gauge_direction("fleet.epi_p90"),
            GaugeDirection::Rise
        ));
        assert!(matches!(
            gauge_direction("fleet.store_size"),
            GaugeDirection::Both
        ));
    }
}
