//! Run-to-run regression diffing.
//!
//! Compares two analyses — a baseline run A and a candidate run B — and
//! flags the differences that matter for an adaptive system: did the
//! candidate lose IPC, spend more energy, converge slower, thrash its
//! configurations, or change decision volume? Each comparison is one
//! [`DiffLine`] with the measured delta and the threshold it was judged
//! against; [`DiffReport::regressed`] is what `ace trace diff` turns
//! into its exit code, making a recorded trace a usable perf baseline
//! in CI.
//!
//! Thresholds are asymmetric on purpose: an IPC *rise* or an EPI *drop*
//! is an improvement and never flags, and event-count deltas flag in
//! both directions because either direction means behaviour changed.

use crate::analysis::{Analysis, EpisodeOutcome};
use ace_telemetry::{Cu, EventKind};
use std::fmt::Write as _;

/// Regression thresholds for [`diff`]. The defaults suit CI comparisons
/// of identically configured runs; loosen them when comparing across
/// deliberate behaviour changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// Maximum tolerated relative drop in headline IPC (0.02 = 2%).
    pub max_ipc_drop: f64,
    /// Maximum tolerated relative rise in headline EPI (0.02 = 2%).
    pub max_epi_rise: f64,
    /// Maximum tolerated relative change, either direction, in per-kind
    /// event counts and in converged-episode count.
    pub max_count_delta: f64,
    /// Maximum tolerated total-variation distance between a CU's
    /// cycle-residency distributions (0.1 = 10% of cycles moved level).
    pub max_residency_shift: f64,
    /// Maximum tolerated relative rise in mean trials-to-converge.
    pub max_convergence_slowdown: f64,
}

impl Default for DiffThresholds {
    fn default() -> DiffThresholds {
        DiffThresholds {
            max_ipc_drop: 0.02,
            max_epi_rise: 0.02,
            max_count_delta: 0.10,
            max_residency_shift: 0.10,
            max_convergence_slowdown: 0.25,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// What was compared (e.g. `headline ipc`, `events TuningStep`).
    pub metric: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// The judged delta (relative where the threshold is relative).
    pub delta: f64,
    /// The threshold the delta was judged against.
    pub threshold: f64,
    /// Whether the delta exceeds the threshold in the bad direction.
    pub regressed: bool,
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Every compared metric, in comparison order.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Whether any compared metric regressed.
    pub fn regressed(&self) -> bool {
        self.lines.iter().any(|l| l.regressed)
    }

    /// The regressed lines only.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffLine> {
        self.lines.iter().filter(|l| l.regressed)
    }

    /// Deterministic human-readable rendering; regressed lines are
    /// prefixed `FAIL`, others `ok`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let verdict = if line.regressed { "FAIL" } else { "ok  " };
            let _ = writeln!(
                out,
                "{verdict} {:<28} a {:>12.4}  b {:>12.4}  delta {:>8.4}  limit {:.4}",
                line.metric, line.a, line.b, line.delta, line.threshold
            );
        }
        let regressions = self.regressions().count();
        if regressions == 0 {
            let _ = writeln!(
                out,
                "no regressions ({} metrics compared)",
                self.lines.len()
            );
        } else {
            let _ = writeln!(
                out,
                "{regressions} regression(s) in {} metrics",
                self.lines.len()
            );
        }
        out
    }
}

/// Relative change from `a` to `b`, with the `a == 0` edge mapped to 0
/// (both zero) or 1 (appeared from nothing).
fn rel_change(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (b - a) / a
    }
}

/// Compares baseline `a` against candidate `b` under `thresholds`.
///
/// Metrics compared, in order: per-kind event counts, total span
/// (instructions and cycles), headline IPC (drop) and EPI (rise),
/// converged-episode count, mean trials-to-converge (rise), drift
/// retunes, and per-CU residency shift (total-variation distance over
/// cycle fractions).
pub fn diff(a: &Analysis, b: &Analysis, thresholds: &DiffThresholds) -> DiffReport {
    let mut lines = Vec::new();
    let mut push_count = |metric: String, va: f64, vb: f64| {
        let delta = rel_change(va, vb);
        lines.push(DiffLine {
            metric,
            a: va,
            b: vb,
            delta,
            threshold: thresholds.max_count_delta,
            regressed: delta.abs() > thresholds.max_count_delta,
        });
    };

    for kind in EventKind::ALL {
        push_count(
            format!("events {}", kind.name()),
            a.count(kind) as f64,
            b.count(kind) as f64,
        );
    }
    push_count(
        "span instructions".to_string(),
        a.final_instret as f64,
        b.final_instret as f64,
    );
    push_count(
        "span cycles".to_string(),
        a.final_cycle as f64,
        b.final_cycle as f64,
    );

    // Headline IPC: only a drop is a regression.
    let ipc_a = a.headline.ipc();
    let ipc_b = b.headline.ipc();
    let ipc_delta = rel_change(ipc_a, ipc_b);
    lines.push(DiffLine {
        metric: "headline ipc".to_string(),
        a: ipc_a,
        b: ipc_b,
        delta: ipc_delta,
        threshold: thresholds.max_ipc_drop,
        regressed: -ipc_delta > thresholds.max_ipc_drop,
    });

    // Headline EPI: only a rise is a regression.
    let epi_a = a.headline.epi_nj();
    let epi_b = b.headline.epi_nj();
    let epi_delta = rel_change(epi_a, epi_b);
    lines.push(DiffLine {
        metric: "headline epi_nj".to_string(),
        a: epi_a,
        b: epi_b,
        delta: epi_delta,
        threshold: thresholds.max_epi_rise,
        regressed: epi_delta > thresholds.max_epi_rise,
    });

    let conv_a = a.episode_count(EpisodeOutcome::Converged) as f64;
    let conv_b = b.episode_count(EpisodeOutcome::Converged) as f64;
    let conv_delta = rel_change(conv_a, conv_b);
    lines.push(DiffLine {
        metric: "episodes converged".to_string(),
        a: conv_a,
        b: conv_b,
        delta: conv_delta,
        threshold: thresholds.max_count_delta,
        regressed: conv_delta.abs() > thresholds.max_count_delta,
    });

    // Convergence speed: only slower is a regression.
    let trials_a = a.mean_trials_to_converge();
    let trials_b = b.mean_trials_to_converge();
    let trials_delta = rel_change(trials_a, trials_b);
    lines.push(DiffLine {
        metric: "mean trials to converge".to_string(),
        a: trials_a,
        b: trials_b,
        delta: trials_delta,
        threshold: thresholds.max_convergence_slowdown,
        regressed: trials_delta > thresholds.max_convergence_slowdown,
    });

    let drift_a = a.drift_retunes() as f64;
    let drift_b = b.drift_retunes() as f64;
    let drift_delta = rel_change(drift_a, drift_b);
    lines.push(DiffLine {
        metric: "drift retunes".to_string(),
        a: drift_a,
        b: drift_b,
        delta: drift_delta,
        threshold: thresholds.max_count_delta,
        regressed: drift_delta.abs() > thresholds.max_count_delta,
    });

    // Residency: total-variation distance between cycle-fraction
    // distributions. 0 = identical, 1 = disjoint.
    for cu in Cu::ALL {
        let fa = a.residency[cu.index()].cycle_fractions();
        let fb = b.residency[cu.index()].cycle_fractions();
        let tv: f64 = fa
            .iter()
            .zip(fb.iter())
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
            / 2.0;
        lines.push(DiffLine {
            metric: format!("residency shift {}", cu.name()),
            a: 0.0,
            b: 0.0,
            delta: tv,
            threshold: thresholds.max_residency_shift,
            regressed: tv > thresholds.max_residency_shift,
        });
    }

    DiffReport { lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_telemetry::{Event, ReconfigCause, Scope};

    fn run(ipc: f64, epi: f64, trials: u32, cu_to: u8) -> Analysis {
        let scope = Scope::Hotspot { method: 1 };
        let mut events = vec![Event::TuningStarted {
            scope,
            configs: trials,
            instret: 100,
        }];
        for t in 0..trials {
            events.push(Event::TuningStep {
                scope,
                trial: t,
                ipc,
                epi_nj: epi,
                instret: 200 + u64::from(t) * 100,
            });
        }
        events.push(Event::TuningConverged {
            scope,
            trials,
            ipc,
            epi_nj: epi,
            instret: 1000,
        });
        events.push(Event::Reconfigured {
            cu: Cu::L1d,
            from: 0,
            to: cu_to,
            cause: ReconfigCause::Apply,
            cycle: 500,
        });
        events.push(Event::Reconfigured {
            cu: Cu::L1d,
            from: cu_to,
            to: cu_to,
            cause: ReconfigCause::Reset,
            cycle: 1000,
        });
        Analysis::of(&events)
    }

    #[test]
    fn identical_runs_do_not_regress() {
        let a = run(1.5, 0.4, 3, 2);
        let report = diff(&a, &a.clone(), &DiffThresholds::default());
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.render().contains("no regressions"));
    }

    #[test]
    fn ipc_drop_beyond_threshold_regresses() {
        let a = run(1.5, 0.4, 3, 2);
        let b = run(1.2, 0.4, 3, 2); // 20% IPC drop
        let report = diff(&a, &b, &DiffThresholds::default());
        assert!(report.regressed());
        assert!(report.regressions().any(|l| l.metric == "headline ipc"));
    }

    #[test]
    fn ipc_rise_is_not_a_regression() {
        let a = run(1.5, 0.4, 3, 2);
        let b = run(2.0, 0.4, 3, 2);
        let report = diff(&a, &b, &DiffThresholds::default());
        assert!(!report.regressions().any(|l| l.metric == "headline ipc"));
    }

    #[test]
    fn epi_rise_beyond_threshold_regresses() {
        let a = run(1.5, 0.4, 3, 2);
        let b = run(1.5, 0.5, 3, 2); // 25% EPI rise
        let report = diff(&a, &b, &DiffThresholds::default());
        assert!(report.regressions().any(|l| l.metric == "headline epi_nj"));
    }

    #[test]
    fn event_count_change_in_either_direction_flags() {
        let a = run(1.5, 0.4, 3, 2);
        let fewer = run(1.5, 0.4, 2, 2);
        let more = run(1.5, 0.4, 5, 2);
        for b in [fewer, more] {
            let report = diff(&a, &b, &DiffThresholds::default());
            assert!(report
                .regressions()
                .any(|l| l.metric == "events TuningStep"));
        }
    }

    #[test]
    fn residency_shift_flags_when_levels_move() {
        let a = run(1.5, 0.4, 3, 1);
        let b = run(1.5, 0.4, 3, 3); // same cycles at a different level
        let report = diff(&a, &b, &DiffThresholds::default());
        assert!(report
            .regressions()
            .any(|l| l.metric == "residency shift l1d"));
    }

    #[test]
    fn thresholds_are_honoured() {
        let a = run(1.5, 0.4, 3, 2);
        let b = run(1.2, 0.4, 3, 2);
        let loose = DiffThresholds {
            max_ipc_drop: 0.5,
            ..DiffThresholds::default()
        };
        let report = diff(&a, &b, &loose);
        assert!(!report.regressions().any(|l| l.metric == "headline ipc"));
    }

    #[test]
    fn rel_change_edges() {
        assert_eq!(rel_change(0.0, 0.0), 0.0);
        assert_eq!(rel_change(0.0, 5.0), 1.0);
        assert_eq!(rel_change(2.0, 1.0), -0.5);
    }
}
