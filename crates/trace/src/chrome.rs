//! Chrome trace-event export.
//!
//! Renders an [`Analysis`] as Chrome trace-event JSON — the format
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. There is no wall-clock in a telemetry stream, so the
//! exporter maps the run's *architectural* counters onto the trace
//! timebase: one synthetic process per counter domain, with the raw
//! counter value used as the microsecond timestamp.
//!
//! * **pid 1 — instret domain**: the DO system's promotion instants, the
//!   phase timeline as duration slices, one track per tuning scope with
//!   episode slices and trial instants, and IPC/EPI counter tracks
//!   sampled at phase-segment boundaries.
//! * **pid 2 — cycle domain**: one track per configurable unit carrying
//!   reconfiguration instants plus a size-level counter track.
//!
//! The output is a deterministic function of the analysis: track ids are
//! assigned in scope order and every list is emitted in analysis order,
//! so two identically seeded runs export byte-identical traces.

use crate::analysis::{Analysis, EpisodeOutcome};
use ace_telemetry::Cu;
use serde::Value;

const PID_INSTRET: u64 = 1;
const PID_CYCLE: u64 = 2;
const TID_DO: u64 = 1;
const TID_PHASES: u64 = 2;
/// Harness spans render on this track in both domains.
const TID_SPANS: u64 = 3;
/// Scope tracks start here, one tid per scope in `Ord` order.
const TID_SCOPE_BASE: u64 = 10;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn meta(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Value {
    let mut pairs = vec![("name", s(name)), ("ph", s("M")), ("pid", Value::U64(pid))];
    if let Some(tid) = tid {
        pairs.push(("tid", Value::U64(tid)));
    }
    pairs.push(("args", obj(vec![("name", s(value))])));
    obj(pairs)
}

fn instant(name: String, pid: u64, tid: u64, ts: u64, args: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("i")),
        ("s", s("t")),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::U64(ts)),
        ("args", args),
    ])
}

fn slice(name: String, pid: u64, tid: u64, ts: u64, dur: u64, args: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("X")),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::U64(ts)),
        // Zero-duration slices render invisibly; clamp to one tick.
        ("dur", Value::U64(dur.max(1))),
        ("args", args),
    ])
}

fn counter(name: &str, pid: u64, ts: u64, series: Vec<(&str, f64)>) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("C")),
        ("pid", Value::U64(pid)),
        ("ts", Value::U64(ts)),
        (
            "args",
            obj(series
                .into_iter()
                .map(|(k, v)| (k, Value::F64(v)))
                .collect()),
        ),
    ])
}

/// Renders the analysis as a Chrome trace-event JSON document.
///
/// Load the resulting string (saved as a `.json` file) in
/// `chrome://tracing` or Perfetto. Timestamps are the raw architectural
/// counters interpreted as microseconds.
pub fn chrome_trace(analysis: &Analysis) -> String {
    // --- metadata: name the synthetic processes and threads ------------
    let mut events: Vec<Value> = vec![
        meta("process_name", PID_INSTRET, None, "instret domain"),
        meta("process_name", PID_CYCLE, None, "cycle domain"),
        meta("thread_name", PID_INSTRET, Some(TID_DO), "do-system"),
        meta("thread_name", PID_INSTRET, Some(TID_PHASES), "phases"),
    ];
    for (i, scope) in analysis.scopes.iter().enumerate() {
        events.push(meta(
            "thread_name",
            PID_INSTRET,
            Some(TID_SCOPE_BASE + i as u64),
            &format!("tune {}", scope.scope.label()),
        ));
    }
    for cu in Cu::ALL {
        events.push(meta(
            "thread_name",
            PID_CYCLE,
            Some(cu.index() as u64 + 1),
            &format!("cu {}", cu.name()),
        ));
    }
    // Span tracks (and their metadata) appear only in obs-instrumented
    // traces, keeping pre-obs exports byte-identical.
    if !analysis.spans.is_empty() {
        events.push(meta("thread_name", PID_INSTRET, Some(TID_SPANS), "spans"));
        events.push(meta(
            "thread_name",
            PID_CYCLE,
            Some(TID_SPANS + 100),
            "spans",
        ));
    }

    // --- instret domain: DO system promotions ---------------------------
    for p in &analysis.promotions {
        events.push(instant(
            format!("promote method {}", p.method),
            PID_INSTRET,
            TID_DO,
            p.instret,
            obj(vec![("invocations", Value::U64(p.invocations))]),
        ));
    }

    // --- instret domain: phase segments + IPC/EPI counters --------------
    for seg in &analysis.phases.segments {
        events.push(slice(
            format!("phase {}", seg.phase),
            PID_INSTRET,
            TID_PHASES,
            seg.start_instret,
            seg.end_instret - seg.start_instret,
            obj(vec![
                ("intervals", Value::U64(seg.intervals())),
                ("stable", Value::U64(seg.stable)),
                ("mean_ipc", Value::F64(seg.mean_ipc)),
                ("mean_epi_nj", Value::F64(seg.mean_epi_nj)),
            ]),
        ));
        events.push(counter(
            "ipc",
            PID_INSTRET,
            seg.start_instret,
            vec![("ipc", seg.mean_ipc)],
        ));
        events.push(counter(
            "epi_nj",
            PID_INSTRET,
            seg.start_instret,
            vec![("epi_nj", seg.mean_epi_nj)],
        ));
    }

    // --- instret domain: one track per tuning scope ----------------------
    for (i, scope) in analysis.scopes.iter().enumerate() {
        let tid = TID_SCOPE_BASE + i as u64;
        for episode in &scope.episodes {
            let mut args = vec![
                ("outcome", s(episode.outcome.name())),
                ("configs", Value::U64(u64::from(episode.configs))),
                ("trials", Value::U64(episode.trials.len() as u64)),
            ];
            if episode.outcome == EpisodeOutcome::Converged {
                args.push(("ipc", Value::F64(episode.converged_ipc.unwrap_or(0.0))));
                args.push((
                    "epi_nj",
                    Value::F64(episode.converged_epi_nj.unwrap_or(0.0)),
                ));
            }
            events.push(slice(
                format!("tune {} ({})", scope.scope.label(), episode.outcome.name()),
                PID_INSTRET,
                tid,
                episode.started_instret,
                episode.span_instr(),
                obj(args),
            ));
            for trial in &episode.trials {
                events.push(instant(
                    format!("trial {}", trial.trial),
                    PID_INSTRET,
                    tid,
                    trial.instret,
                    obj(vec![
                        ("ipc", Value::F64(trial.ipc)),
                        ("epi_nj", Value::F64(trial.epi_nj)),
                    ]),
                ));
            }
        }
    }

    // --- both domains: harness spans -------------------------------------
    for span in &analysis.spans {
        let args = obj(vec![
            ("depth", Value::U64(u64::from(span.depth))),
            ("open", Value::Bool(span.open)),
        ]);
        events.push(slice(
            format!("span {}", span.name),
            PID_INSTRET,
            TID_SPANS,
            span.begin_instret,
            span.span_instr(),
            args.clone(),
        ));
        // The cycle-domain copy only helps when the span actually carried
        // cycle stamps.
        if span.end_cycle > 0 {
            events.push(slice(
                format!("span {}", span.name),
                PID_CYCLE,
                TID_SPANS + 100,
                span.begin_cycle,
                span.span_cycles(),
                args,
            ));
        }
    }

    // --- cycle domain: reconfigurations + level counters ------------------
    for r in &analysis.reconfigs {
        let tid = r.cu.index() as u64 + 1;
        events.push(instant(
            format!(
                "{} L{} -> L{} ({})",
                r.cu.name(),
                r.from,
                r.to,
                r.cause.name()
            ),
            PID_CYCLE,
            tid,
            r.cycle,
            obj(vec![
                ("from", Value::U64(u64::from(r.from))),
                ("to", Value::U64(u64::from(r.to))),
                ("cause", s(r.cause.name())),
            ]),
        ));
        events.push(counter(
            &format!("{} level", r.cu.name()),
            PID_CYCLE,
            r.cycle,
            vec![("level", f64::from(r.to))],
        ));
    }

    let doc = obj(vec![
        ("displayTimeUnit", s("ms")),
        ("traceEvents", Value::Array(events)),
    ]);
    serde_json::to_string(&doc).expect("value tree always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_telemetry::{Event, ReconfigCause, Scope};
    use serde::find_field;

    fn sample() -> Analysis {
        let scope = Scope::Phase { phase: 0 };
        Analysis::of(&[
            Event::HotspotPromoted {
                method: 1,
                invocations: 9,
                instret: 10,
            },
            Event::TuningStarted {
                scope,
                configs: 4,
                instret: 100,
            },
            Event::TuningStep {
                scope,
                trial: 0,
                ipc: 1.0,
                epi_nj: 0.5,
                instret: 150,
            },
            Event::TuningConverged {
                scope,
                trials: 1,
                ipc: 1.0,
                epi_nj: 0.5,
                instret: 200,
            },
            Event::Reconfigured {
                cu: Cu::L1d,
                from: 0,
                to: 3,
                cause: ReconfigCause::Apply,
                cycle: 250,
            },
            Event::IntervalSample {
                phase: 0,
                index: 0,
                ipc: 1.1,
                epi_nj: 0.45,
                stable: false,
                instret: 300,
            },
        ])
    }

    #[test]
    fn export_parses_and_has_the_expected_shape() {
        let json = chrome_trace(&sample());
        let doc: Value = serde_json::from_str(&json).expect("export must be valid JSON");
        let root = doc.as_object().expect("root object");
        let trace_events = find_field(root, "traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!trace_events.is_empty());
        // Every event is an object with name/ph/pid.
        for event in trace_events {
            let pairs = event.as_object().expect("event object");
            for key in ["name", "ph", "pid"] {
                assert!(find_field(pairs, key).is_some(), "event missing {key}");
            }
        }
        // Both counter domains are present and named.
        let phases: Vec<&str> = trace_events
            .iter()
            .filter_map(|e| find_field(e.as_object().unwrap(), "ph"))
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        for ph in ["M", "i", "X", "C"] {
            assert!(phases.contains(&ph), "missing phase type {ph}");
        }
    }

    #[test]
    fn slice_durations_are_clamped_to_one_tick() {
        // A converged episode whose start == end would render invisibly.
        let scope = Scope::Hotspot { method: 5 };
        let analysis = Analysis::of(&[
            Event::TuningStarted {
                scope,
                configs: 1,
                instret: 100,
            },
            Event::TuningConverged {
                scope,
                trials: 0,
                ipc: 1.0,
                epi_nj: 0.5,
                instret: 100,
            },
        ]);
        let json = chrome_trace(&analysis);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let trace_events = find_field(doc.as_object().unwrap(), "traceEvents")
            .and_then(Value::as_array)
            .unwrap();
        let durs: Vec<u64> = trace_events
            .iter()
            .filter_map(|e| find_field(e.as_object().unwrap(), "dur"))
            .filter_map(Value::as_u64)
            .collect();
        assert!(!durs.is_empty());
        assert!(durs.iter().all(|&d| d >= 1));
    }

    #[test]
    fn export_is_deterministic() {
        let analysis = sample();
        assert_eq!(chrome_trace(&analysis), chrome_trace(&analysis.clone()));
    }
}
