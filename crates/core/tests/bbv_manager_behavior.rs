//! Behavioral tests of the BBV manager under controlled block streams:
//! phase recurrence with configuration reuse, trial discarding on phase
//! changes, and the next-phase predictor's effect.

use ace_core::{AceManager, BbvAceManager, BbvManagerConfig};
use ace_energy::EnergyModel;
use ace_phase::BbvConfig;
use ace_sim::{Block, BranchEvent, CuKind, Machine, MachineConfig, MemAccess, SizeLevel};

/// Test-scale machine: guard intervals shrunk with the sampling interval
/// so the alignment matches the real configuration.
fn machine() -> Machine {
    let mut cfg = MachineConfig::table2();
    cfg.l1d_reconfig_interval = 10_000;
    cfg.l2_reconfig_interval = 100_000;
    Machine::new(cfg).unwrap()
}

fn manager(use_predictor: bool) -> BbvAceManager {
    BbvAceManager::new(
        BbvManagerConfig {
            bbv: BbvConfig {
                interval_instr: 100_100,
                ..BbvConfig::default()
            },
            use_predictor,
            ..BbvManagerConfig::default()
        },
        EnergyModel::default_180nm(),
    )
}

/// Runs one ~100K-instruction interval of "phase k" behavior: a
/// phase-specific branch-PC cluster and a phase-specific tiny working set.
fn run_interval(machine: &mut Machine, mgr: &mut BbvAceManager, phase: u64) {
    let start = machine.instret();
    let mut i = 0u64;
    while machine.instret() < start + 100_200 {
        let b = Block {
            pc: 0x10_0000 * (phase + 1) + (i % 8) * 64,
            ninstr: 50,
            accesses: vec![MemAccess::load(0x100_0000 * (phase + 1) + (i * 24) % 2048)],
            branch: Some(BranchEvent {
                pc: 0x10_0000 * (phase + 1) + (i % 8) * 64 + 56,
                taken: true,
            }),
        };
        machine.exec_block(&b);
        mgr.on_block(&b, machine);
        i += 1;
    }
}

#[test]
fn recurring_phase_reapplies_its_configuration() {
    let mut m = machine();
    let mut mgr = manager(false);
    mgr.on_start(&mut m);
    // Long homogeneous run: phase 0 tunes fully (2 KB working set -> small
    // caches win).
    for _ in 0..60 {
        run_interval(&mut m, &mut mgr, 0);
    }
    let after_tuning = mgr.report();
    assert_eq!(after_tuning.tuned_phases, 1, "phase 0 tuned");
    let chosen_l1d = m.level(CuKind::L1d);
    assert!(
        chosen_l1d > SizeLevel::LARGEST,
        "tiny working set shrinks the L1D"
    );

    // A foreign phase disturbs the configuration...
    for _ in 0..4 {
        run_interval(&mut m, &mut mgr, 1);
    }
    // ...then phase 0 recurs: within two intervals its stored choice is back.
    run_interval(&mut m, &mut mgr, 0);
    run_interval(&mut m, &mut mgr, 0);
    run_interval(&mut m, &mut mgr, 0);
    assert_eq!(
        m.level(CuKind::L1d),
        chosen_l1d,
        "recurring phase must reuse its chosen configuration"
    );
    let r = mgr.report();
    assert!(r.reconfigs > 0);
}

#[test]
fn alternating_phases_discard_misattributed_trials() {
    let mut m = machine();
    let mut mgr = manager(false);
    mgr.on_start(&mut m);
    // Strict alternation: no two consecutive intervals share a phase, so
    // trials set up for "the phase continues" keep getting discarded.
    for i in 0..30 {
        run_interval(&mut m, &mut mgr, i % 2);
    }
    let r = mgr.report();
    assert_eq!(r.tuned_phases, 0, "nothing is ever stable long enough");
    assert_eq!(r.stability.stable_fraction(), 0.0);
    assert_eq!(r.intervals_in_tuned_phases, 0);
}

#[test]
fn predictor_accelerates_periodic_recurrence() {
    // Pattern with runs (4 x A, 2 x B): the predictor learns the period
    // and pre-applies the next phase's configuration at run boundaries.
    let run_pattern = |use_predictor: bool| {
        let mut m = machine();
        let mut mgr = manager(use_predictor);
        mgr.on_start(&mut m);
        for cycle in 0..22 {
            for _ in 0..4 {
                run_interval(&mut m, &mut mgr, 0);
            }
            for _ in 0..2 {
                run_interval(&mut m, &mut mgr, 1);
            }
            let _ = cycle;
        }
        let r = mgr.report();
        (
            r.predictions,
            r.prediction_accuracy,
            r.intervals_in_tuned_phases,
        )
    };
    let (p_off, _, _) = run_pattern(false);
    let (p_on, acc, covered_on) = run_pattern(true);
    assert_eq!(p_off, 0, "predictor off: no predictions");
    assert!(p_on > 10, "predictor on: predictions issued ({p_on})");
    assert!(acc > 0.8, "periodic pattern predicts accurately ({acc:.2})");
    assert!(covered_on > 0);
}

#[test]
fn interval_accounting_matches_execution() {
    let mut m = machine();
    let mut mgr = manager(false);
    mgr.on_start(&mut m);
    for _ in 0..25 {
        run_interval(&mut m, &mut mgr, 0);
    }
    let r = mgr.report();
    // 25 driven intervals, boundaries at >= 100_100 instructions.
    assert!(
        (24..=26).contains(&r.intervals),
        "intervals {}",
        r.intervals
    );
    assert_eq!(r.stability.total_intervals, r.intervals);
    assert!(r.covered_instr <= m.instret());
}
