//! Properties of the scheme-naming layer: `Scheme` parse ↔ `Display`
//! round-trips, registry ids agree with the compat enum, and arbitrary
//! strings never alias a registered scheme.

use ace_core::{Scheme, SchemeRegistry, SchemeSpec};
use proptest::prelude::*;

/// Every parseable scheme variant (the `Fixed` variant carries a config
/// and is deliberately not parseable).
const NAMED: [Scheme; 5] = [
    Scheme::Baseline,
    Scheme::Hotspot,
    Scheme::Bbv,
    Scheme::Positional,
    Scheme::Pdm,
];

#[test]
fn every_named_scheme_round_trips_and_resolves() {
    let registry = SchemeRegistry::builtin();
    for scheme in NAMED {
        // name ↔ from_name round-trip, and Display agrees with name().
        assert_eq!(Scheme::from_name(scheme.name()), Some(scheme));
        assert_eq!(scheme.to_string(), scheme.name());

        // The enum's names are exactly the registry's builtin ids.
        let resolved = registry
            .get(scheme.name())
            .unwrap_or_else(|| panic!("{} not registered", scheme.name()));
        assert_eq!(resolved.name(), scheme.name());

        // The compat From<Scheme> conversion produces a spec with the
        // same id that resolves against the builtin registry.
        let spec: SchemeSpec = scheme.into();
        assert_eq!(spec.id(), scheme.name());
        assert_eq!(spec.resolve(&registry).unwrap().name(), scheme.name());
    }
}

/// Candidate scheme ids: half the cases draw a genuine name (possibly
/// mutated by one appended letter), the rest a random lowercase string —
/// so the property exercises both the parseable and unparseable sides.
fn arb_name() -> impl Strategy<Value = String> {
    (
        0u64..10,
        prop::collection::vec(97u8..123, 0..13),
        prop::option::of(97u8..123),
    )
        .prop_map(|(pick, bytes, tail)| {
            if let Some(scheme) = NAMED.get(pick as usize) {
                let mut name = scheme.name().to_string();
                if let Some(extra) = tail {
                    name.push(extra as char);
                }
                name
            } else {
                String::from_utf8(bytes).expect("ascii lowercase")
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parsing is exact: a string parses iff it is one of the five
    /// names, and then round-trips through Display.
    #[test]
    fn parse_is_exact_and_round_trips(name in arb_name()) {
        match Scheme::from_name(&name) {
            Some(scheme) => {
                prop_assert_eq!(scheme.to_string(), name.clone());
                prop_assert!(NAMED.contains(&scheme));
            }
            None => {
                prop_assert!(NAMED.iter().all(|s| s.name() != name));
            }
        }
    }

    /// Registry lookup agrees with enum parsing for arbitrary ids: a
    /// string resolves in the builtin registry iff the enum parses it
    /// (the registry holds exactly the named variants by default).
    #[test]
    fn builtin_lookup_matches_enum_parse(name in arb_name()) {
        let registry = SchemeRegistry::builtin();
        prop_assert_eq!(
            registry.get(&name).is_some(),
            Scheme::from_name(&name).is_some()
        );
    }
}
