//! End-to-end behavior of the shared-store warm-start path inside one
//! process: a cold run publishes its convergences, a second run seeded
//! with those publications hits the store, adopts the selections, and
//! measures fewer tuning trials — the fleet payoff in miniature.

use ace_core::{
    registry_version, Experiment, HotspotAceManager, HotspotManagerConfig, WarmStartContext,
};
use ace_energy::EnergyModel;
use ace_runtime::DoConfig;
use ace_sim::MachineConfig;
use ace_telemetry::{EventKind, Telemetry};

const LIMIT: u64 = 8_000_000;

fn manager() -> HotspotAceManager {
    HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    )
}

fn version() -> u16 {
    registry_version(&MachineConfig::table2().cu_registry())
}

/// Promote aggressively so hotspots converge within [`LIMIT`].
fn fast_do() -> DoConfig {
    DoConfig {
        hot_threshold: 2,
        probe_invocations: 1,
        ..DoConfig::default()
    }
}

fn run(preset: &str, mgr: &mut HotspotAceManager, tel: &Telemetry) {
    Experiment::preset(preset)
        .do_config(fast_do())
        .instruction_limit(LIMIT)
        .telemetry(tel)
        .run_with(mgr)
        .expect("preset runs");
}

#[test]
fn cold_run_misses_and_publishes() {
    let mut mgr = manager();
    mgr.set_warm_start(WarmStartContext::new(version()));
    let tel = Telemetry::counting();
    run("db", &mut mgr, &tel);

    let report = mgr.report();
    assert_eq!(report.warm_hits, 0, "empty store cannot hit");
    assert!(report.warm_misses > 0, "adaptable hotspots must look up");
    assert!(report.store_publishes > 0, "cold convergences must publish");
    assert_eq!(tel.count(EventKind::WarmStartHit), 0);
    assert_eq!(tel.count(EventKind::WarmStartMiss), report.warm_misses);
    assert_eq!(tel.count(EventKind::StorePublish), report.store_publishes);

    let ctx = mgr.take_warm_start().expect("context attached");
    assert_eq!(ctx.publications().len() as u64, report.store_publishes);
}

#[test]
fn warm_run_hits_and_saves_trials() {
    // Cold machine: tune from scratch, collect publications.
    let mut cold = manager();
    cold.set_warm_start(WarmStartContext::new(version()));
    run("db", &mut cold, &Telemetry::off());
    let cold_report = cold.report();
    let publications = cold
        .take_warm_start()
        .expect("context attached")
        .into_publications();
    assert!(!publications.is_empty());

    // Warm machine: same workload behavior, store seeded with the cold
    // machine's selections.
    let mut ctx = WarmStartContext::new(version());
    for p in &publications {
        ctx.insert(p.signature, p.config);
    }
    let mut warm = manager();
    warm.set_warm_start(ctx);
    let tel = Telemetry::counting();
    run("db", &mut warm, &tel);
    let warm_report = warm.report();

    assert!(warm_report.warm_hits > 0, "seeded store must hit");
    assert!(warm_report.warm_trials_saved > 0);
    assert_eq!(tel.count(EventKind::WarmStartHit), warm_report.warm_hits);
    let cold_trials: u64 = cold_report.cu.iter().map(|s| s.tunings).sum();
    let warm_trials: u64 = warm_report.cu.iter().map(|s| s.tunings).sum();
    assert!(
        warm_trials < cold_trials,
        "warm start must measurably shorten tuning: warm {warm_trials} vs cold {cold_trials}"
    );
    // Warm adoptions republish nothing the store already has.
    assert!(warm_report.store_publishes <= cold_report.store_publishes);
}

#[test]
fn stale_registry_version_starts_cold() {
    let mut cold = manager();
    cold.set_warm_start(WarmStartContext::new(version()));
    run("db", &mut cold, &Telemetry::off());
    let publications = cold.take_warm_start().unwrap().into_publications();

    // Seed a context at a different registry version: every lookup is
    // computed against the new version, so the old keys cannot match.
    let stale_version = version().wrapping_add(1);
    let mut ctx = WarmStartContext::new(stale_version);
    for p in &publications {
        ctx.insert(p.signature, p.config);
    }
    let mut mgr = manager();
    mgr.set_warm_start(ctx);
    run("db", &mut mgr, &Telemetry::off());
    assert_eq!(
        mgr.report().warm_hits,
        0,
        "entries from another registry version must not apply"
    );
}

#[test]
fn warm_start_off_is_inert() {
    let mut mgr = manager();
    let tel = Telemetry::counting();
    run("db", &mut mgr, &tel);
    let report = mgr.report();
    assert_eq!(
        report.warm_hits + report.warm_misses + report.store_publishes,
        0
    );
    assert_eq!(tel.count(EventKind::WarmStartMiss), 0);
    assert!(mgr.take_warm_start().is_none());
}
