//! End-to-end behavior of the PDM scheme against its hotspot substrate:
//! with the distance threshold at zero every prediction lookup misses and
//! the run degrades *exactly* to search; with the default threshold a
//! workload of behaviorally similar kernels produces prediction hits and
//! measurably fewer trials.

use ace_core::{Experiment, PdmManagerConfig, PdmScheme, Scheme, SchemeExt, SchemeSpec};
use ace_workloads::{MemPattern, Program, ProgramBuilder, Stmt};
use std::sync::Arc;

/// Eight short kernels with near-identical behavior: the first tunes by
/// search, the rest are prediction-hit candidates.
fn similar_kernels() -> Program {
    let mut b = ProgramBuilder::new("pdm_similar", 7);
    let mut body = Vec::new();
    for i in 0..8u32 {
        let ws = 4096 + 64 * u64::from(i);
        let base = b.alloc_region(ws);
        let pat = b.add_pattern(MemPattern::resident(base, ws));
        let kernel = b.add_method(
            format!("kernel{i}"),
            vec![Stmt::Compute {
                ninstr: 60_000,
                pattern: pat,
            }],
        );
        body.push(Stmt::Call {
            callee: kernel,
            count: 24,
        });
    }
    let main = b.add_method("main", body);
    b.entry(main).build().expect("program validates")
}

#[test]
fn zero_threshold_degrades_exactly_to_search() {
    let hotspot = Experiment::program(similar_kernels())
        .scheme(Scheme::Hotspot)
        .run_scheme()
        .unwrap();

    // distance_threshold 0 with the strict `<` comparison can never hit:
    // every lookup misses and the tuner walks the same list the hotspot
    // scheme walks, so the measured run is identical.
    let pdm = Experiment::program(similar_kernels())
        .scheme(SchemeSpec::instance(Arc::new(PdmScheme(
            PdmManagerConfig {
                distance_threshold: 0.0,
                ..PdmManagerConfig::default()
            },
        ))))
        .run_scheme()
        .unwrap();

    assert_eq!(
        serde_json::to_string(&hotspot.record).unwrap(),
        serde_json::to_string(&pdm.record).unwrap(),
        "threshold-0 PDM must measure the exact run hotspot search measures"
    );
    assert_eq!(hotspot.report.tunings, pdm.report.tunings);
    assert_eq!(hotspot.report.reconfigs, pdm.report.reconfigs);
    assert_eq!(hotspot.report.tuned_scopes, pdm.report.tuned_scopes);

    let SchemeExt::Pdm(report) = &pdm.report.ext else {
        panic!("pdm run carries a pdm report");
    };
    assert_eq!(report.predict_hits, 0, "threshold 0 can never predict");
    assert!(
        report.predict_misses > 0,
        "lookups still happen, they all miss"
    );
}

#[test]
fn similar_kernels_predict_and_save_trials() {
    let hotspot = Experiment::program(similar_kernels())
        .scheme(Scheme::Hotspot)
        .run_scheme()
        .unwrap();
    let pdm = Experiment::program(similar_kernels())
        .scheme(Scheme::Pdm)
        .run_scheme()
        .unwrap();

    let SchemeExt::Pdm(report) = &pdm.report.ext else {
        panic!("pdm run carries a pdm report");
    };
    assert!(
        report.predict_hits > 0,
        "behaviorally similar kernels must produce prediction hits"
    );
    assert!(
        pdm.report.tunings < hotspot.report.tunings,
        "prediction must measure fewer trials than search ({} vs {})",
        pdm.report.tunings,
        hotspot.report.tunings
    );
    // Guard accounting is uniform across schemes: both reports carry the
    // machine-counted value, whatever it is.
    assert_eq!(
        hotspot.report.guard_rejections,
        hotspot.record.counters.guard_rejections
    );
    assert_eq!(
        pdm.report.guard_rejections,
        pdm.record.counters.guard_rejections
    );
}
