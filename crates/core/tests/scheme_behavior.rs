//! Behavioral tests of the managers under controlled event sequences:
//! the re-tuning (drift) path, sampling cadence, guard interactions, and
//! degenerate inputs that a full workload run would not isolate.

use ace_core::{
    AceManager, Experiment, HotspotAceManager, HotspotManagerConfig, NullManager, RunConfig,
};
use ace_energy::EnergyModel;
use ace_runtime::{DoEvent, HotspotClass};
use ace_sim::{Block, Machine, MachineConfig, MemAccess};
use ace_workloads::{MemPattern, MethodId, ProgramBuilder, Stmt};

/// Runs `ninstr` instructions of hit-dominated work.
fn run_fast(machine: &mut Machine, ninstr: u64) {
    let mut left = ninstr;
    while left > 0 {
        let n = left.min(50) as u32;
        machine.exec_block(&Block {
            pc: 0x400,
            ninstr: n,
            accesses: vec![MemAccess::load(0x1000)],
            branch: None,
        });
        left -= n as u64;
    }
}

/// Runs `ninstr` instructions of miss-heavy work (streaming).
fn run_slow(machine: &mut Machine, ninstr: u64, cursor: &mut u64) {
    let mut left = ninstr;
    while left > 0 {
        let n = left.min(50) as u32;
        *cursor += 4096;
        machine.exec_block(&Block {
            pc: 0x400,
            ninstr: n,
            accesses: vec![
                MemAccess::load(0x100_0000 + *cursor),
                MemAccess::load(0x200_0000 + *cursor),
            ],
            branch: None,
        });
        left -= n as u64;
    }
}

/// Drives one synthetic hotspot invocation through the manager.
fn invoke<F: FnMut(&mut Machine)>(
    mgr: &mut HotspotAceManager,
    machine: &mut Machine,
    method: MethodId,
    mut body: F,
) {
    mgr.on_event(
        DoEvent::HotspotEnter {
            method,
            class: HotspotClass::L1d,
        },
        machine,
    );
    let start = machine.instret();
    body(machine);
    mgr.on_event(
        DoEvent::HotspotExit {
            method,
            class: HotspotClass::L1d,
            invocation_instr: machine.instret() - start,
        },
        machine,
    );
}

#[test]
fn sampling_detects_drift_and_retunes() {
    let mut machine = Machine::new(MachineConfig::table2()).unwrap();
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig {
            sample_period: 4,
            retune_threshold: 0.5,
            ..HotspotManagerConfig::default()
        },
        EnergyModel::default_180nm(),
    );
    let m = MethodId(7);

    // Phase 1: fast invocations until tuning completes.
    for _ in 0..16 {
        invoke(&mut mgr, &mut machine, m, |mach| run_fast(mach, 150_000));
    }
    let (_, tuned, _) = mgr.hotspot_state(m).unwrap();
    assert!(tuned, "tuner should be done after 16 fast invocations");
    assert_eq!(mgr.report().retunings, 0);

    // Phase 2: behavior shifts to miss-heavy; the sampling code must
    // notice the IPC drift and restart tuning.
    let mut cursor = 0u64;
    for _ in 0..24 {
        invoke(&mut mgr, &mut machine, m, |mach| {
            run_slow(mach, 150_000, &mut cursor)
        });
    }
    assert!(
        mgr.report().retunings >= 1,
        "drift of >50% IPC must trigger a re-tune (got {})",
        mgr.report().retunings
    );
}

#[test]
fn stable_behavior_never_retunes() {
    let mut machine = Machine::new(MachineConfig::table2()).unwrap();
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig {
            sample_period: 4,
            retune_threshold: 0.5,
            ..HotspotManagerConfig::default()
        },
        EnergyModel::default_180nm(),
    );
    let m = MethodId(3);
    for _ in 0..64 {
        invoke(&mut mgr, &mut machine, m, |mach| run_fast(mach, 150_000));
    }
    assert_eq!(
        mgr.report().retunings,
        0,
        "steady hotspots re-tune rarely (here never)"
    );
}

#[test]
fn too_small_hotspots_are_ignored() {
    let mut machine = Machine::new(MachineConfig::table2()).unwrap();
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let m = MethodId(1);
    for _ in 0..10 {
        mgr.on_event(
            DoEvent::HotspotEnter {
                method: m,
                class: HotspotClass::TooSmall,
            },
            &mut machine,
        );
        run_fast(&mut machine, 5_000);
        mgr.on_event(
            DoEvent::HotspotExit {
                method: m,
                class: HotspotClass::TooSmall,
                invocation_instr: 5_000,
            },
            &mut machine,
        );
    }
    assert_eq!(mgr.tracked_hotspots(), 0);
    let r = mgr.report();
    assert_eq!(r.l1d().tunings + r.l2().tunings, 0);
}

#[test]
fn empty_invocations_do_not_poison_tuning() {
    // Exit immediately after enter (zero instructions): the probe yields
    // no measurement and the tuner must not advance.
    let mut machine = Machine::new(MachineConfig::table2()).unwrap();
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let m = MethodId(2);
    for _ in 0..8 {
        invoke(&mut mgr, &mut machine, m, |_| {});
    }
    let (_, tuned, measured) = mgr.hotspot_state(m).unwrap();
    assert!(!tuned, "nothing was measurable");
    assert_eq!(measured, 0);
    // And real invocations afterwards still tune normally.
    for _ in 0..16 {
        invoke(&mut mgr, &mut machine, m, |mach| run_fast(mach, 150_000));
    }
    assert!(mgr.hotspot_state(m).unwrap().1);
}

#[test]
fn single_method_program_runs_every_scheme() {
    // Degenerate program: one method, one pattern, no nesting.
    let mut b = ProgramBuilder::new("mono", 5);
    let region = b.alloc_region(2048);
    let pat = b.add_pattern(MemPattern::resident(region, 2048));
    let main = b.add_method(
        "main",
        vec![Stmt::Compute {
            ninstr: 3_000_000,
            pattern: pat,
        }],
    );
    let program = b.entry(main).build().unwrap();
    let cfg = RunConfig::default();

    let base = Experiment::program(program.clone())
        .config(cfg.clone())
        .run_with(&mut NullManager)
        .unwrap();
    assert!(base.instret >= 2_500_000);
    // main is invoked once: never promoted, so the adaptive scheme changes
    // nothing — but it must not crash or mis-handle the lone exit.
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let r = Experiment::program(program.clone())
        .config(cfg.clone())
        .run_with(&mut mgr)
        .unwrap();
    assert_eq!(r.table4.hotspots, 0);
    assert_eq!(mgr.tracked_hotspots(), 0);
    assert!(
        (r.ipc - base.ipc).abs() < 1e-9,
        "nothing adapted, nothing changed"
    );
}

#[test]
fn tuning_respects_the_hardware_guard() {
    // Back-to-back enter/exit pairs of two different hotspots, spaced well
    // below the 100 K guard: the second hotspot's trials must not thrash
    // the configuration (the guard rejects; the manager just waits).
    let mut machine = Machine::new(MachineConfig::table2()).unwrap();
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    for round in 0..60 {
        let m = MethodId(round % 2);
        invoke(&mut mgr, &mut machine, m, |mach| run_fast(mach, 30_000));
    }
    // Guard rejections happen (spacing 30 K < 100 K interval) but nothing
    // panics and trials only complete on legal reconfigurations.
    let c = machine.counters();
    let total_resizes: u64 = c.l1d.resizes.iter().sum();
    assert!(
        total_resizes <= 1 + machine.instret() / 100_000,
        "guard bounds the resize rate"
    );
}

#[test]
fn threaded_run_is_deterministic_and_balanced() {
    let (program, entries) = ace_workloads::mtrt_threaded();
    let cfg = RunConfig {
        instruction_limit: Some(8_000_000),
        ..RunConfig::default()
    };
    let a = Experiment::program(program.clone())
        .config(cfg.clone())
        .threaded(&entries, 500_000)
        .run_with(&mut NullManager)
        .unwrap();
    let b = Experiment::program(program.clone())
        .config(cfg.clone())
        .threaded(&entries, 500_000)
        .run_with(&mut NullManager)
        .unwrap();
    assert_eq!(a.counters, b.counters, "threaded runs are deterministic");
    assert!(a.instret >= 8_000_000);
    assert!(a.ipc > 1.0);
}

#[test]
fn threaded_run_detects_hotspots_in_both_threads() {
    let (program, entries) = ace_workloads::mtrt_threaded();
    let cfg = RunConfig::default();
    let mut mgr = HotspotAceManager::new(
        HotspotManagerConfig::default(),
        EnergyModel::default_180nm(),
    );
    let r = Experiment::program(program.clone())
        .config(cfg)
        .threaded(&entries, 1_000_000)
        .run_with(&mut mgr)
        .unwrap();
    // Both threads contribute hotspots (their method names are disjoint).
    let mut t0 = 0;
    let mut t1 = 0;
    for (m, _, _, _, _, _) in mgr.hotspot_details() {
        let name = &program.method(m).name;
        t0 += name.starts_with("t0::") as u32;
        t1 += name.starts_with("t1::") as u32;
    }
    assert!(t0 >= 3, "thread 0 hotspots: {t0}");
    assert!(t1 >= 3, "thread 1 hotspots: {t1}");
    assert!(r.table4.pct_code_in_hotspots > 60.0);
}

#[test]
fn quantum_size_bounds_thread_blending() {
    let (program, entries) = ace_workloads::mtrt_threaded();
    let cfg = RunConfig {
        instruction_limit: Some(20_000_000),
        ..RunConfig::default()
    };
    // Tiny quanta blend threads into every measurement window; huge quanta
    // approach back-to-back execution. Both must run to completion with
    // consistent totals.
    let fine = Experiment::program(program.clone())
        .config(cfg.clone())
        .threaded(&entries, 100_000)
        .run_with(&mut NullManager)
        .unwrap();
    let coarse = Experiment::program(program.clone())
        .config(cfg.clone())
        .threaded(&entries, 5_000_000)
        .run_with(&mut NullManager)
        .unwrap();
    assert_eq!(fine.instret / 1_000_000, coarse.instret / 1_000_000);
    // Finer multiplexing costs more context switches (drain cycles).
    assert!(fine.cycles > coarse.cycles);
}
