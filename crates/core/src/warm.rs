//! Warm-start plumbing: hotspot signatures and the manager-side view of a
//! shared tuning store.
//!
//! A fleet of machines running similar workloads re-discovers the same
//! configuration selections over and over. The fleet subsystem
//! (`ace-fleet`) keeps a store of converged selections keyed by
//! [`HotspotSignature`] — a behavioral key independent of method ids, so
//! entries published by one machine match equivalent hotspots on another.
//! This module holds the pieces the manager needs: the signature, and a
//! [`WarmStartContext`] carrying a read-only snapshot of the store into a
//! run plus the publications made during it. The store itself (persistence,
//! eviction, merging) lives in `ace-fleet`; `ace-core` stays free of any
//! I/O or cross-machine concerns.

use crate::cu::AceConfig;
use ace_sim::{CuId, CuRegistry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The store key of one tuned hotspot: working-set class × phase grain ×
/// CU set, versioned against the registry.
///
/// Deliberately coarse — the point is that *different* machines running
/// *similar* hotspots land on the same key. Method ids never enter the
/// signature: they are machine-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HotspotSignature {
    /// Phase grain: `log2` bucket of the hotspot's mean invocation size
    /// in dynamic instructions.
    pub size_class: u8,
    /// Working-set class: the reference-trial (full-size) IPC quantized
    /// into eighth-of-an-IPC buckets. Two hotspots whose full-size
    /// behavior differs see different keys even at the same size.
    pub ws_class: u8,
    /// Bitmask over [`CuId`] slots the candidate list touches (one bit
    /// for a decoupled list, several for the combined list).
    pub cu_mask: u8,
    /// Version of the CU registry the entry was tuned against; a
    /// reconfigured fleet invalidates old entries wholesale.
    pub registry_version: u16,
}

impl HotspotSignature {
    /// Builds the signature from a hotspot's mean invocation size, its
    /// reference-trial IPC, the CU mask of its candidate list, and the
    /// registry version of the store being consulted.
    pub fn new(avg_size: u64, reference_ipc: f64, cu_mask: u8, registry_version: u16) -> Self {
        HotspotSignature {
            size_class: avg_size.max(1).ilog2() as u8,
            ws_class: ws_class_of(reference_ipc),
            cu_mask,
            registry_version,
        }
    }

    /// Packs the signature into one `u64` key (the form telemetry events
    /// and the on-disk store log carry).
    pub fn packed(self) -> u64 {
        u64::from(self.size_class)
            | (u64::from(self.ws_class) << 8)
            | (u64::from(self.cu_mask) << 16)
            | (u64::from(self.registry_version) << 24)
    }

    /// Inverse of [`HotspotSignature::packed`].
    pub fn from_packed(key: u64) -> Self {
        HotspotSignature {
            size_class: (key & 0xFF) as u8,
            ws_class: ((key >> 8) & 0xFF) as u8,
            cu_mask: ((key >> 16) & 0xFF) as u8,
            registry_version: ((key >> 24) & 0xFFFF) as u16,
        }
    }
}

/// Quantizes a reference IPC into the signature's working-set class.
fn ws_class_of(ipc: f64) -> u8 {
    (ipc * 8.0).floor().clamp(0.0, 255.0) as u8
}

/// The [`CuId`] bitmask of a candidate configuration list, for
/// [`HotspotSignature::cu_mask`].
pub fn cu_mask_of(configs: &[AceConfig]) -> u8 {
    let mut mask = 0u8;
    for cfg in configs {
        for cu in CuId::ALL {
            if cfg.touches(cu) {
                mask |= 1 << cu.index();
            }
        }
    }
    mask
}

/// A 16-bit fingerprint of a machine's CU registry (FNV-1a over every
/// descriptor, folded). Stores stamp their entries with it so a fleet
/// whose hardware description changes starts cold instead of applying
/// selections tuned for different ladders.
pub fn registry_version(registry: &CuRegistry) -> u16 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let put = |hash: &mut u64, byte: u8| {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x1_0000_01b3);
    };
    for desc in registry.iter() {
        put(&mut hash, desc.cu.index() as u8);
        put(&mut hash, desc.levels);
        for b in desc.reconfig_interval.to_le_bytes() {
            put(&mut hash, b);
        }
        for b in desc.min_hotspot_instr.to_le_bytes() {
            put(&mut hash, b);
        }
        put(&mut hash, desc.flush as u8);
    }
    (hash ^ (hash >> 16) ^ (hash >> 32) ^ (hash >> 48)) as u16
}

/// One converged selection a run wants to publish to the shared store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorePublication {
    /// The signature the entry is stored under.
    pub signature: HotspotSignature,
    /// The selected configuration.
    pub config: AceConfig,
    /// IPC of the selected configuration when it was tuned.
    pub ipc: f64,
    /// Energy per instruction (nJ) of the selected configuration.
    pub epi_nj: f64,
    /// Trials the cold tuning episode took to converge.
    pub trials: u32,
}

/// What one run sees of the shared tuning store: a frozen snapshot for
/// lookups, plus a buffer of publications the run makes.
///
/// The snapshot is immutable for the whole run — concurrent machines in a
/// fleet wave all read the same state, which is what keeps fleet results
/// byte-identical at any worker count. Publications are buffered here and
/// merged into the store by the fleet driver afterwards, in deterministic
/// machine order.
#[derive(Debug, Clone, Default)]
pub struct WarmStartContext {
    version: u16,
    entries: HashMap<u64, AceConfig>,
    publications: Vec<StorePublication>,
}

impl WarmStartContext {
    /// An empty context (cold store) at the given registry version.
    pub fn new(version: u16) -> WarmStartContext {
        WarmStartContext {
            version,
            entries: HashMap::new(),
            publications: Vec::new(),
        }
    }

    /// The registry version signatures are stamped with.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Seeds the snapshot with one store entry.
    pub fn insert(&mut self, signature: HotspotSignature, config: AceConfig) {
        self.entries.insert(signature.packed(), config);
    }

    /// Looks a signature up in the snapshot.
    pub fn lookup(&self, signature: HotspotSignature) -> Option<AceConfig> {
        self.entries.get(&signature.packed()).copied()
    }

    /// Number of entries in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the snapshot is empty (a cold store).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Buffers one publication (called by the manager on cold
    /// convergence).
    pub fn publish(&mut self, publication: StorePublication) {
        self.publications.push(publication);
    }

    /// Publications buffered so far, in convergence order.
    pub fn publications(&self) -> &[StorePublication] {
        &self.publications
    }

    /// Consumes the context, returning the buffered publications.
    pub fn into_publications(self) -> Vec<StorePublication> {
        self.publications
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::SizeLevel;

    #[test]
    fn packed_round_trips() {
        let sig = HotspotSignature {
            size_class: 17,
            ws_class: 9,
            cu_mask: 0b0110,
            registry_version: 0xBEEF,
        };
        assert_eq!(HotspotSignature::from_packed(sig.packed()), sig);
    }

    #[test]
    fn signature_buckets_are_coarse_but_discriminating() {
        // Same bucket: nearby sizes and IPCs.
        let a = HotspotSignature::new(100_000, 2.01, 0b10, 1);
        let b = HotspotSignature::new(120_000, 2.05, 0b10, 1);
        assert_eq!(a, b);
        // Different grain, working set, CU set, or version: different key.
        assert_ne!(a, HotspotSignature::new(1_000_000, 2.01, 0b10, 1));
        assert_ne!(a, HotspotSignature::new(100_000, 1.0, 0b10, 1));
        assert_ne!(a, HotspotSignature::new(100_000, 2.01, 0b100, 1));
        assert_ne!(a, HotspotSignature::new(100_000, 2.01, 0b10, 2));
    }

    #[test]
    fn cu_mask_covers_the_list() {
        assert_eq!(
            cu_mask_of(&crate::cu::single_cu_list(CuId::L1d)),
            1 << CuId::L1d.index()
        );
        let combined = cu_mask_of(&crate::cu::combined_list());
        assert_eq!(combined & (1 << CuId::L1d.index()), 1 << CuId::L1d.index());
        assert_eq!(combined & (1 << CuId::L2.index()), 1 << CuId::L2.index());
    }

    #[test]
    fn registry_version_tracks_descriptor_changes() {
        use ace_sim::{CuDescriptor, FlushSemantics};
        let mut a = CuRegistry::new();
        a.register(CuDescriptor::new(
            CuId::L1d,
            100_000,
            50_000,
            FlushSemantics::WritebackDirty,
        ));
        let mut b = a.clone();
        assert_eq!(registry_version(&a), registry_version(&b));
        b.register(CuDescriptor::new(
            CuId::L1d,
            100_000,
            60_000,
            FlushSemantics::WritebackDirty,
        ));
        assert_ne!(registry_version(&a), registry_version(&b));
    }

    #[test]
    fn context_lookup_and_publish() {
        let mut ctx = WarmStartContext::new(3);
        assert!(ctx.is_empty());
        let sig = HotspotSignature::new(200_000, 2.0, 0b10, 3);
        let cfg = AceConfig::l1d_only(SizeLevel::SMALLEST);
        ctx.insert(sig, cfg);
        assert_eq!(ctx.len(), 1);
        assert_eq!(ctx.lookup(sig), Some(cfg));
        assert_eq!(
            ctx.lookup(HotspotSignature::new(200_000, 1.0, 0b10, 3)),
            None
        );
        ctx.publish(StorePublication {
            signature: sig,
            config: cfg,
            ipc: 2.0,
            epi_nj: 0.5,
            trials: 4,
        });
        assert_eq!(ctx.publications().len(), 1);
        assert_eq!(ctx.into_publications().len(), 1);
    }
}
