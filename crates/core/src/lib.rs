//! # ace-core — adaptive computing environment management via dynamic optimization
//!
//! The primary contribution of *Effective Adaptive Computing Environment
//! Management via Dynamic Optimization* (Hu, Valluri & John, CGO 2005),
//! reproduced on the Rust substrates of this workspace:
//!
//! * [`HotspotAceManager`] — the paper's scheme: phase detection and
//!   adaptation at DO-system hotspot boundaries, with **CU decoupling**
//!   (small hotspots tune the L1D cache, large hotspots the L2), zero
//!   recurring-phase identification latency, tuning code → configuration
//!   code replacement, and drift-sampled re-tuning.
//! * [`BbvAceManager`] — the strongest prior temporal scheme: Basic Block
//!   Vector phase detection at 1 M-instruction sampling intervals plus the
//!   Dhodapkar–Smith tuning algorithm over all 16 combinatorial cache
//!   configurations.
//! * [`PdmAceManager`] — Phase Distance Mapping (Adegbija et al.): the
//!   hotspot substrate plus a behavioral-distance knowledge table that
//!   *predicts* a new phase's configuration from an already-tuned one.
//! * [`NullManager`] / [`FixedManager`] — the non-adaptive baseline and
//!   static oracle points.
//! * [`Experiment`] — the typed builder tying workload, DO system,
//!   machine and manager into one measured run.
//!
//! Schemes are open for extension: implement [`TuningScheme`], register
//! it in a [`SchemeRegistry`], and every experiment, bench and trace
//! consumer picks it up by id — no closed enum to extend.
//!
//! ## Example: compare the two schemes on one workload
//!
//! ```no_run
//! use ace_core::{Experiment, Scheme};
//!
//! let base = Experiment::preset("db").run()?;
//! let ours = Experiment::preset("db").scheme(Scheme::Hotspot).run()?;
//! println!(
//!     "L1D energy saving: {:.0}%, slowdown: {:.2}%",
//!     100.0 * ours.l1d_saving_vs(&base),
//!     100.0 * ours.slowdown_vs(&base),
//! );
//! # Ok::<(), ace_core::ExperimentError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod bbv_mgr;
mod cu;
mod driver;
mod experiment;
mod hotspot;
mod manager;
mod measure;
mod pdm_mgr;
mod positional_mgr;
mod scheme;
mod tuner;
mod warm;

pub use batch::{run_batch, BatchLane};
pub use bbv_mgr::{BbvAceManager, BbvManagerConfig, BbvReport};
pub use cu::{combined_list, single_cu_list, AceConfig};
#[allow(deprecated)]
pub use driver::{run_threaded, run_with_manager};
pub use driver::{RunConfig, RunRecord};
pub use experiment::{Experiment, ExperimentError, Scheme, SchemeRun};
pub use hotspot::{CuSchemeStats, HotspotAceManager, HotspotManagerConfig, HotspotReport};
pub use manager::{AceManager, FixedManager, NullManager};
pub use measure::{Measurement, Probe};
pub use pdm_mgr::{PdmAceManager, PdmManagerConfig, PdmReport, PhaseVector};
pub use positional_mgr::{PositionalAceManager, PositionalManagerConfig, PositionalReport};
pub use scheme::{
    BaselineScheme, BbvScheme, FixedScheme, HotspotScheme, PdmScheme, PositionalScheme, SchemeCtx,
    SchemeExt, SchemeManager, SchemeRegistry, SchemeReport, SchemeSpec, TuningScheme,
    WarmStartCapable,
};
pub use tuner::ConfigTuner;
pub use warm::{
    cu_mask_of, registry_version, HotspotSignature, StorePublication, WarmStartContext,
};
