//! The ACE-manager abstraction and the trivial managers.
//!
//! A manager is the policy half of the framework: it observes DO-system
//! events (hotspot boundaries) and/or the raw block stream (for temporal
//! schemes) and issues reconfiguration requests to the machine's control
//! registers. The schemes compared in the evaluation are
//! [`crate::HotspotAceManager`] (the paper's contribution) and
//! [`crate::BbvAceManager`] (the BBV + tune-all-combinations baseline);
//! [`FixedManager`] provides the non-adaptive baseline and the static
//! oracle points.

use crate::cu::AceConfig;
use ace_runtime::DoEvent;
use ace_sim::{Block, Machine};

/// Policy hooks invoked by the run driver (see [`crate::Experiment`]).
///
/// All methods default to no-ops so a manager only implements the hooks
/// its scheme needs.
pub trait AceManager {
    /// Hands the manager the run's telemetry handle before
    /// [`AceManager::on_start`]. Managers that emit decision events store
    /// it; the default implementation drops it.
    fn set_telemetry(&mut self, telemetry: ace_telemetry::Telemetry) {
        let _ = telemetry;
    }

    /// Called once before the first instruction.
    fn on_start(&mut self, machine: &mut Machine) {
        let _ = machine;
    }

    /// Called for every DO-system boundary event.
    fn on_event(&mut self, event: DoEvent, machine: &mut Machine) {
        let _ = (event, machine);
    }

    /// Called for every raw method entry (before the DO system filters).
    /// Schemes that do not use a DO system — like positional adaptation at
    /// large-procedure boundaries — hook here.
    fn on_method_enter(&mut self, method: ace_workloads::MethodId, machine: &mut Machine) {
        let _ = (method, machine);
    }

    /// Called for every raw method exit with the invocation's inclusive
    /// dynamic instruction count.
    fn on_method_exit(
        &mut self,
        method: ace_workloads::MethodId,
        invocation_instr: u64,
        machine: &mut Machine,
    ) {
        let _ = (method, invocation_instr, machine);
    }

    /// Called after every executed block.
    fn on_block(&mut self, block: &Block, machine: &mut Machine) {
        let _ = (block, machine);
    }

    /// Called once after the last instruction.
    fn on_finish(&mut self, machine: &mut Machine) {
        let _ = machine;
    }
}

/// The non-adaptive baseline: leaves every CU at its largest size.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullManager;

impl AceManager for NullManager {}

/// Pins a fixed configuration for the whole run (static oracle points and
/// the per-configuration sweeps of the ablation benches).
///
/// # Examples
///
/// ```
/// use ace_core::{FixedManager, AceConfig};
/// use ace_sim::SizeLevel;
/// let _mgr = FixedManager::new(AceConfig::both(
///     SizeLevel::new(1).unwrap(),
///     SizeLevel::new(2).unwrap(),
/// ));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FixedManager {
    config: AceConfig,
}

impl FixedManager {
    /// Creates a manager pinning `config` from the first cycle on.
    pub fn new(config: AceConfig) -> FixedManager {
        FixedManager { config }
    }

    /// The pinned configuration.
    pub fn config(&self) -> AceConfig {
        self.config
    }
}

impl AceManager for FixedManager {
    fn on_start(&mut self, machine: &mut Machine) {
        // CuId index order is the legacy apply order (L1D before L2).
        for (cu, level) in self.config.touched_units() {
            machine.apply_resize(cu, level);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::{CuKind, MachineConfig, SizeLevel};

    #[test]
    fn fixed_manager_pins_levels() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut mgr = FixedManager::new(AceConfig::both(
            SizeLevel::new(2).unwrap(),
            SizeLevel::new(3).unwrap(),
        ));
        mgr.on_start(&mut m);
        assert_eq!(m.level(CuKind::L1d), SizeLevel::new(2).unwrap());
        assert_eq!(m.level(CuKind::L2), SizeLevel::new(3).unwrap());
    }

    #[test]
    fn null_manager_changes_nothing() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut mgr = NullManager;
        mgr.on_start(&mut m);
        mgr.on_finish(&mut m);
        assert_eq!(m.level(CuKind::L1d), SizeLevel::LARGEST);
        assert_eq!(m.level(CuKind::L2), SizeLevel::LARGEST);
    }
}
