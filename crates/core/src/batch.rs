//! Lane-batched run driver: several independent runs advance round-robin
//! through one [`ace_sim::MachineBatch`], overlapping their dependency
//! chains on a single core.
//!
//! Each lane is a complete run — its own program, executor, DO system,
//! manager, and telemetry handle — exactly as [`crate::Experiment`] would
//! run it scalar. The driver advances every live lane by one executor
//! step per round: a plain block retires immediately on that lane's
//! machine, and method enter/exit events, manager decisions, and resizes
//! (the reconfig boundaries) are handled on that lane alone. Rotating
//! lanes at block granularity breaks the loop-carried dependency chain a
//! single run would have between consecutive blocks, which is where the
//! batched throughput win comes from (see `ace_sim::MachineBatch`). Per
//! lane, the sequence of operations is identical to the scalar driver,
//! and lanes share no state — so the records, counters, and per-lane
//! telemetry streams are byte-identical to N scalar runs. The
//! differential tests in `crates/sim/tests/batch_equivalence.rs` pin
//! that equivalence.

use crate::driver::{publish_walk_profile, RunConfig, RunRecord};
use crate::manager::AceManager;
use ace_runtime::DoSystem;
use ace_sim::{Block, ConfigError, Machine, MachineBatch};
use ace_workloads::{Executor, Program, Step};

/// One lane of a batched run: a program, its run configuration, and the
/// manager driving it. The manager is borrowed so callers can consult it
/// afterwards (scheme reports, warm-start state).
pub struct BatchLane<'a> {
    /// The workload program.
    pub program: &'a Program,
    /// Run parameters. Each lane carries its own telemetry handle;
    /// batching never interleaves events across lanes' handles.
    pub cfg: RunConfig,
    /// The ACE manager for this lane.
    pub manager: &'a mut dyn AceManager,
}

/// Per-lane driver state alongside the machine living in the batch.
struct LaneState<'a> {
    dos: DoSystem<'a>,
    exec: Executor<'a>,
    buf: Block,
    entry_stack: Vec<u64>,
}

/// Runs every lane to completion, batching block execution across lanes,
/// and returns one [`RunRecord`] per lane in input order. Equivalent to
/// running each lane through the scalar driver on its own.
///
/// # Errors
///
/// Returns [`ConfigError`] if any lane's machine configuration is
/// invalid; no lane runs in that case.
pub fn run_batch(mut lanes: Vec<BatchLane<'_>>) -> Result<Vec<RunRecord>, ConfigError> {
    // Validate every configuration before any lane starts.
    let machines = lanes
        .iter()
        .map(|lane| Machine::new(lane.cfg.machine.clone()))
        .collect::<Result<Vec<_>, _>>()?;
    let mut batch = MachineBatch::new(machines);

    let n = lanes.len();
    let mut states: Vec<LaneState<'_>> = Vec::with_capacity(n);
    let mut timers: Vec<Option<ace_telemetry::ScopedTimer>> = Vec::with_capacity(n);
    for (i, lane) in lanes.iter_mut().enumerate() {
        let mut dos = DoSystem::new(lane.program, lane.cfg.do_config.clone());
        dos.set_telemetry(lane.cfg.telemetry.clone());
        lane.manager.set_telemetry(lane.cfg.telemetry.clone());
        timers.push(lane.cfg.telemetry.metrics().map(|m| m.timer("run_wall_ms")));
        let mut exec = match lane.cfg.workload_seed {
            Some(seed) => Executor::with_seed(lane.program, seed),
            None => Executor::new(lane.program),
        };
        if let Some(limit) = lane.cfg.instruction_limit {
            exec.set_instruction_limit(limit);
        }
        lane.manager.on_start(batch.lane_mut(i));
        states.push(LaneState {
            dos,
            exec,
            buf: Block::with_capacity(64),
            entry_stack: Vec::with_capacity(64),
        });
    }

    let mut records: Vec<Option<RunRecord>> = (0..n).map(|_| None).collect();
    let mut active: Vec<usize> = (0..n).collect();
    while !active.is_empty() {
        // One executor step per live lane, retiring each lane's block
        // before the rotation moves on. Boundary events (enter/exit,
        // completion) are handled on that lane alone — the divergence
        // rule.
        let mut i = 0;
        while i < active.len() {
            let lane = active[i];
            let st = &mut states[lane];
            match st.exec.step(&mut st.buf) {
                Step::Block => {
                    let machine = batch.lane_mut(lane);
                    machine.exec_block(&st.buf);
                    lanes[lane].manager.on_block(&st.buf, machine);
                    i += 1;
                }
                Step::Enter(m) => {
                    let machine = batch.lane_mut(lane);
                    let mgr = &mut *lanes[lane].manager;
                    st.entry_stack.push(machine.instret());
                    mgr.on_method_enter(m, machine);
                    let event = st.dos.on_enter(m, machine);
                    mgr.on_event(event, machine);
                    i += 1;
                }
                Step::Exit(m) => {
                    let machine = batch.lane_mut(lane);
                    let mgr = &mut *lanes[lane].manager;
                    let entered = st.entry_stack.pop().unwrap_or(0);
                    mgr.on_method_exit(m, machine.instret() - entered, machine);
                    let event = st.dos.on_exit(m, machine);
                    mgr.on_event(event, machine);
                    i += 1;
                }
                Step::Done => {
                    let machine = batch.lane_mut(lane);
                    lanes[lane].manager.on_finish(machine);
                    publish_walk_profile(&lanes[lane].cfg.telemetry, st.exec.walk_profile());
                    let counters = machine.counters().clone();
                    records[lane] = Some(RunRecord {
                        workload: lanes[lane].program.name().to_string(),
                        instret: counters.instret,
                        cycles: counters.cycles,
                        ipc: counters.ipc(),
                        energy: lanes[lane].cfg.energy.breakdown(&counters),
                        table4: st.dos.table4_summary(counters.instret),
                        do_stats: *st.dos.stats(),
                        counters,
                    });
                    timers[lane] = None; // stop this lane's wall timer
                    active.remove(i);
                }
            }
        }
    }

    Ok(records
        .into_iter()
        .map(|r| r.expect("every lane ran to completion"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_with_manager_impl;
    use crate::manager::NullManager;
    use crate::{Experiment, Scheme};

    fn cfg(limit: u64) -> RunConfig {
        RunConfig {
            instruction_limit: Some(limit),
            ..RunConfig::default()
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn batched_lanes_match_scalar_runs() {
        let programs: Vec<_> = ["db", "jess", "compress"]
            .iter()
            .map(|n| ace_workloads::preset(n).unwrap())
            .collect();
        let scalar: Vec<RunRecord> = programs
            .iter()
            .map(|p| run_with_manager_impl(p, &cfg(2_000_000), &mut NullManager).unwrap())
            .collect();

        let mut managers = [NullManager, NullManager, NullManager];
        let lanes: Vec<BatchLane<'_>> = programs
            .iter()
            .zip(managers.iter_mut())
            .map(|(p, m)| BatchLane {
                program: p,
                cfg: cfg(2_000_000),
                manager: m,
            })
            .collect();
        let batched = run_batch(lanes).unwrap();
        for (s, b) in scalar.iter().zip(&batched) {
            assert_eq!(s.workload, b.workload);
            assert_eq!(s.counters, b.counters, "{} diverged", s.workload);
            assert_eq!(s.instret, b.instret);
            assert_eq!(s.cycles, b.cycles);
        }
    }

    #[test]
    fn adaptive_managers_resize_identically_in_a_batch() {
        // Managers issue resizes (reconfig boundaries) — the divergence
        // rule routes those through the scalar path per lane.
        let scalar: Vec<_> = ["javac", "db"]
            .iter()
            .map(|n| {
                Experiment::preset(*n)
                    .scheme(Scheme::Hotspot)
                    .instruction_limit(3_000_000)
                    .run_scheme()
                    .unwrap()
            })
            .collect();
        let batched = Experiment::run_scheme_batch(vec![
            Experiment::preset("javac")
                .scheme(Scheme::Hotspot)
                .instruction_limit(3_000_000),
            Experiment::preset("db")
                .scheme(Scheme::Hotspot)
                .instruction_limit(3_000_000),
        ])
        .unwrap();
        for (s, b) in scalar.iter().zip(&batched) {
            assert_eq!(s.record.counters, b.record.counters);
            assert_eq!(s.report, b.report);
        }
    }
}
