//! Measurement of one region of execution (a hotspot invocation or a
//! sampling interval): IPC and cache energy per instruction.
//!
//! This is the metric the tuning code gathers between a hotspot's entry
//! and exit points (or across one BBV sampling interval) and the objective
//! the tuners minimize: total configurable-cache energy per instruction,
//! subject to an IPC degradation bound.

use ace_energy::EnergyModel;
use ace_sim::Machine;
use serde::{Deserialize, Serialize};

/// A probe armed at region entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    instret: u64,
    cycles: u64,
    energy_nj: f64,
}

impl Probe {
    /// Snapshots the machine at region entry.
    pub fn arm(machine: &mut Machine, model: &EnergyModel) -> Probe {
        let c = machine.counters();
        Probe {
            instret: c.instret,
            cycles: c.cycles,
            energy_nj: model.breakdown(c).total_nj(),
        }
    }

    /// Completes the measurement at region exit.
    ///
    /// Returns `None` for an empty region (no instructions retired), which
    /// callers should treat as "no measurement".
    pub fn finish(self, machine: &mut Machine, model: &EnergyModel) -> Option<Measurement> {
        let c = machine.counters();
        let instr = c.instret.saturating_sub(self.instret);
        let cycles = c.cycles.saturating_sub(self.cycles);
        if instr == 0 || cycles == 0 {
            return None;
        }
        let energy = model.breakdown(c).total_nj() - self.energy_nj;
        Some(Measurement {
            instr,
            ipc: instr as f64 / cycles as f64,
            epi_nj: energy / instr as f64,
        })
    }
}

/// IPC and energy-per-instruction over one region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Instructions retired in the region.
    pub instr: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Configurable-cache energy per instruction, in nanojoules.
    pub epi_nj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::{Block, MachineConfig, MemAccess};

    #[test]
    fn probe_measures_region_delta() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let model = EnergyModel::default_180nm();
        // Warm up.
        for _ in 0..10 {
            m.exec_block(&Block {
                pc: 0x400,
                ninstr: 40,
                accesses: vec![MemAccess::load(0x1000)],
                branch: None,
            });
        }
        let probe = Probe::arm(&mut m, &model);
        for _ in 0..100 {
            m.exec_block(&Block {
                pc: 0x400,
                ninstr: 40,
                accesses: vec![MemAccess::load(0x1000)],
                branch: None,
            });
        }
        let meas = probe.finish(&mut m, &model).unwrap();
        assert_eq!(meas.instr, 4000);
        assert!(meas.ipc > 3.0 && meas.ipc <= 4.0, "ipc {}", meas.ipc);
        assert!(meas.epi_nj > 0.0);
    }

    #[test]
    fn empty_region_yields_none() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let model = EnergyModel::default_180nm();
        let probe = Probe::arm(&mut m, &model);
        assert!(probe.finish(&mut m, &model).is_none());
    }

    #[test]
    fn smaller_cache_lower_epi_when_fitting() {
        let model = EnergyModel::default_180nm();
        let mut epis = Vec::new();
        for level in [0u8, 3] {
            let mut m = Machine::new(MachineConfig::table2()).unwrap();
            m.apply_resize(
                ace_sim::CuKind::L1d,
                ace_sim::SizeLevel::new(level).unwrap(),
            );
            m.apply_resize(ace_sim::CuKind::L2, ace_sim::SizeLevel::new(level).unwrap());
            let probe = Probe::arm(&mut m, &model);
            for _ in 0..2000 {
                for a in (0..2048u64).step_by(64) {
                    m.exec_block(&Block {
                        pc: 0x400,
                        ninstr: 16,
                        accesses: vec![MemAccess::load(0x8000 + a)],
                        branch: None,
                    });
                }
            }
            epis.push(probe.finish(&mut m, &model).unwrap().epi_nj);
        }
        assert!(
            epis[1] < epis[0],
            "tiny working set: small config cheaper {epis:?}"
        );
    }
}
