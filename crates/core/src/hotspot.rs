//! The DO-based ACE management scheme (Section 3) — the paper's
//! contribution.
//!
//! For each hotspot the DO system classifies, the manager installs *tuning
//! code* at its entry and *profiling code* at its exits: successive
//! invocations test the hotspot's configuration list one entry at a time,
//! measuring IPC and cache energy per instruction between entry and exit.
//! Thanks to **CU decoupling**, the list holds only the four settings of
//! the one CU whose reconfiguration interval matches the hotspot's size —
//! L1D for 50 K–500 K-instruction hotspots, L2 for larger ones — instead of
//! the 16 combinatorial settings. Once the most energy-efficient
//! configuration is selected, the tuning code is replaced by
//! *configuration code* that re-applies it on every invocation with zero
//! recurring-phase identification latency, plus occasional *sampling code*
//! that re-tunes the hotspot if its behavior drifts.

use crate::cu::{combined_list, single_cu_list, AceConfig};
use crate::measure::Probe;
use crate::tuner::ConfigTuner;
use crate::warm::{cu_mask_of, HotspotSignature, StorePublication, WarmStartContext};
use ace_energy::EnergyModel;
use ace_runtime::{DoEvent, HotspotClass};
use ace_sim::{Block, CuId, Machine, OnlineStats, MAX_CUS};
use ace_telemetry::{Event, Histogram, ReconfigCause, Scope, Telemetry};
use ace_workloads::MethodId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::manager::AceManager;

/// Configuration of the hotspot manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotspotManagerConfig {
    /// Maximum IPC degradation a configuration may cause versus the
    /// full-size reference (paper: 2 %).
    pub perf_threshold: f64,
    /// After tuning, every `sample_period`-th invocation runs sampling
    /// code to detect behavior drift.
    pub sample_period: u64,
    /// Relative IPC change versus the tuned measurement that triggers
    /// re-tuning (hotspot behavior is usually stable, so re-tunes are rare).
    pub retune_threshold: f64,
    /// `true` for CU decoupling (the paper's scheme); `false` makes every
    /// adaptable hotspot walk all 16 combinatorial configurations (the
    /// ablation of Section 3.2's claim).
    pub decouple: bool,
}

impl Default for HotspotManagerConfig {
    fn default() -> Self {
        HotspotManagerConfig {
            perf_threshold: 0.02,
            sample_period: 16,
            retune_threshold: 0.5,
            decouple: true,
        }
    }
}

/// What the current invocation of a hotspot is being used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// Measuring one configuration trial.
    Trial,
    /// Sampling code checking for behavior drift.
    Sample,
    /// Nothing to measure this invocation.
    Idle,
}

/// Per-hotspot manager state (the ACE part of its DO database entry).
#[derive(Debug, Clone)]
struct HsState {
    class: HotspotClass,
    tuner: ConfigTuner,
    pending: Pending,
    probe: Option<Probe>,
    /// Whether this invocation runs under the selected configuration.
    covered: bool,
    ipc_stats: OnlineStats,
    invocations_after_tuned: u64,
    tuned_ipc: Option<f64>,
    retunings: u32,
    covered_instr: u64,
    /// Store signature, known once the reference trial has been measured.
    signature: Option<HotspotSignature>,
    /// Whether the selection was adopted from the shared store.
    warm: bool,
}

/// Per-CU aggregate counters (Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuSchemeStats {
    /// Configuration trials measured (the "tunings" column).
    pub tunings: u64,
    /// Control-register changes applying a selected best configuration
    /// (the "reconfigs" column).
    pub reconfigs: u64,
    /// Dynamic instructions executed inside hotspots running under their
    /// selected configuration (the "coverage" numerator).
    pub covered_instr: u64,
}

/// End-of-run report of the hotspot scheme (Tables 5 and 6).
///
/// Per-CU counters are indexed by [`CuId`] so the report covers whatever
/// units the machine registers; the named accessors ([`HotspotReport::l1d`]
/// and friends) keep the paper's two-CU reading convenient.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HotspotReport {
    /// Adaptable hotspots observed, per CU (indexed by [`CuId`]).
    #[serde(default)]
    pub cu_hotspots: [u64; MAX_CUS],
    /// Per-CU tuning/reconfiguration/coverage counters (indexed by
    /// [`CuId`]).
    #[serde(default)]
    pub cu: [CuSchemeStats; MAX_CUS],
    /// Hotspots too small to adapt any CU.
    pub small_hotspots: u64,
    /// Adaptable hotspots that completed tuning.
    pub tuned_hotspots: u64,
    /// Mean over hotspots of each hotspot's own IPC CoV (Table 5
    /// "per-hotspot IPC CoV").
    pub per_hotspot_ipc_cov: f64,
    /// CoV of the per-hotspot mean IPCs (Table 5 "inter-hotspot IPC CoV").
    pub inter_hotspot_ipc_cov: f64,
    /// Re-tunings triggered by sampling code.
    pub retunings: u64,
    /// Reconfiguration requests the hardware guard rejected.
    pub guard_rejections: u64,
    /// Tuning-store lookups that matched an entry (warm starts).
    #[serde(default)]
    pub warm_hits: u64,
    /// Tuning-store lookups that found nothing (cold tunes).
    #[serde(default)]
    pub warm_misses: u64,
    /// Candidate-list trials avoided across all warm starts.
    #[serde(default)]
    pub warm_trials_saved: u64,
    /// Converged selections published to the tuning store.
    #[serde(default)]
    pub store_publishes: u64,
}

impl HotspotReport {
    /// Per-CU counters for `cu`.
    pub fn stats(&self, cu: CuId) -> CuSchemeStats {
        self.cu[cu.index()]
    }

    /// Adaptable hotspots bound to `cu`.
    pub fn hotspots_of(&self, cu: CuId) -> u64 {
        self.cu_hotspots[cu.index()]
    }

    /// Per-CU counters for the instruction window (three-CU extension).
    pub fn window(&self) -> CuSchemeStats {
        self.stats(CuId::Window)
    }

    /// Per-CU counters for the L1 data cache.
    pub fn l1d(&self) -> CuSchemeStats {
        self.stats(CuId::L1d)
    }

    /// Per-CU counters for the L2 cache.
    pub fn l2(&self) -> CuSchemeStats {
        self.stats(CuId::L2)
    }

    /// Per-CU counters for the DTLB (registry-extension unit).
    pub fn dtlb(&self) -> CuSchemeStats {
        self.stats(CuId::Dtlb)
    }

    /// Adaptable instruction-window hotspots (three-CU extension only).
    pub fn window_hotspots(&self) -> u64 {
        self.hotspots_of(CuId::Window)
    }

    /// Adaptable L1D hotspots observed.
    pub fn l1d_hotspots(&self) -> u64 {
        self.hotspots_of(CuId::L1d)
    }

    /// Adaptable L2 hotspots observed.
    pub fn l2_hotspots(&self) -> u64 {
        self.hotspots_of(CuId::L2)
    }

    /// Fraction of store lookups that hit (0 when the run made none).
    pub fn warm_hit_rate(&self) -> f64 {
        let lookups = self.warm_hits + self.warm_misses;
        if lookups == 0 {
            0.0
        } else {
            self.warm_hits as f64 / lookups as f64
        }
    }

    /// Fraction of adaptable hotspots that finished tuning.
    pub fn tuned_fraction(&self) -> f64 {
        let adaptable: u64 = self.cu_hotspots.iter().sum();
        if adaptable == 0 {
            0.0
        } else {
            self.tuned_hotspots as f64 / adaptable as f64
        }
    }
}

/// The hotspot-based ACE manager.
///
/// Wire it into an [`crate::Experiment`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct HotspotAceManager {
    config: HotspotManagerConfig,
    model: EnergyModel,
    states: HashMap<MethodId, HsState>,
    /// Per-CU aggregate counters, indexed by [`CuId`].
    stats: [CuSchemeStats; MAX_CUS],
    retunings: u64,
    /// Scratch counter for trial requests (not reported as reconfigs).
    trial_changes: u64,
    /// Hotspots classified too small to adapt any CU.
    small_seen: u64,
    /// Predicted configurations (Section 6 extension): a hotspot with a
    /// prediction skips tuning entirely and applies the predicted setting
    /// from its first instrumented invocation.
    predictions: HashMap<MethodId, AceConfig>,
    /// Shared tuning-store view (fleet warm start): a frozen snapshot
    /// consulted after each hotspot's reference trial, plus the buffer of
    /// publications this run makes. `None` outside fleet runs.
    warm: Option<WarmStartContext>,
    /// Mean invocation size per classified hotspot, captured from
    /// [`DoEvent::HotspotClassified`] for signature computation.
    sizes: HashMap<MethodId, u64>,
    warm_hits: u64,
    warm_misses: u64,
    warm_trials_saved: u64,
    store_publishes: u64,
    tel: Telemetry,
    /// Histogram handles resolved once at `set_telemetry` so the per-exit
    /// path never touches the registry lock.
    hs_metrics: Option<HsMetrics>,
}

/// Pre-resolved metric handles for the hotspot-exit path.
#[derive(Debug, Clone)]
struct HsMetrics {
    /// Per-invocation dynamic instruction counts (paper: 50 K–500 K is the
    /// L1D-adaptable band, larger is L2-adaptable).
    invocation_instr: Histogram,
    /// Per-invocation cache energy per instruction (nanojoules).
    invocation_epi_nj: Histogram,
}

impl HsMetrics {
    fn resolve(tel: &Telemetry) -> Option<HsMetrics> {
        let metrics = tel.metrics()?;
        Some(HsMetrics {
            invocation_instr: metrics.histogram(
                "hotspot_invocation_instr",
                &[1e3, 1e4, 5e4, 1e5, 5e5, 1e6, 1e7, 1e8],
            ),
            invocation_epi_nj: metrics.histogram(
                "hotspot_invocation_epi_nj",
                &[0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0],
            ),
        })
    }
}

impl HotspotAceManager {
    /// Creates a manager with the given policy and energy model.
    pub fn new(config: HotspotManagerConfig, model: EnergyModel) -> HotspotAceManager {
        HotspotAceManager {
            config,
            model,
            states: HashMap::new(),
            stats: [CuSchemeStats::default(); MAX_CUS],
            retunings: 0,
            trial_changes: 0,
            small_seen: 0,
            predictions: HashMap::new(),
            warm: None,
            sizes: HashMap::new(),
            warm_hits: 0,
            warm_misses: 0,
            warm_trials_saved: 0,
            store_publishes: 0,
            tel: Telemetry::off(),
            hs_metrics: None,
        }
    }

    /// Attaches a warm-start context: a frozen snapshot of the shared
    /// tuning store. Each hotspot consults it once its reference trial is
    /// measured (so the behavioral signature is known); a hit replaces
    /// the rest of the candidate walk with the stored selection, a miss
    /// tunes cold and publishes the convergence back into the context.
    pub fn set_warm_start(&mut self, context: WarmStartContext) {
        self.warm = Some(context);
    }

    /// Detaches the warm-start context, carrying the publications this
    /// run buffered. `None` if warm start was never enabled.
    pub fn take_warm_start(&mut self) -> Option<WarmStartContext> {
        self.warm.take()
    }

    /// Installs a configuration prediction for `method` (the Section 6
    /// "JIT code analysis" extension): when the hotspot is classified, the
    /// prediction for its CU class is adopted without any tuning latency.
    pub fn set_prediction(&mut self, method: MethodId, config: AceConfig) {
        self.predictions.insert(method, config);
    }

    /// The policy configuration.
    pub fn config(&self) -> &HotspotManagerConfig {
        &self.config
    }

    fn list_for(&self, class: HotspotClass) -> Vec<AceConfig> {
        if !self.config.decouple {
            return combined_list();
        }
        match class.cu() {
            Some(cu) => single_cu_list(cu),
            None => unreachable!("small hotspots are not tuned"),
        }
    }

    fn cu_stats_mut(&mut self, cu: CuId) -> &mut CuSchemeStats {
        &mut self.stats[cu.index()]
    }

    fn handle_enter(&mut self, method: MethodId, class: HotspotClass, machine: &mut Machine) {
        let Some(cu) = class.cu() else {
            return;
        };
        let list = self.list_for(class);
        let threshold = self.config.perf_threshold;
        let sample_period = self.config.sample_period;
        // A predicted configuration (restricted to this hotspot's CU class)
        // eliminates the tuning process entirely.
        let predicted = self.predictions.get(&method).map(|p| p.restricted_to(cu));
        let tel = self.tel.clone();
        let is_new = !self.states.contains_key(&method);
        let configs = if predicted.is_some() {
            1
        } else {
            list.len() as u32
        };
        let state = self.states.entry(method).or_insert_with(|| HsState {
            class,
            tuner: match predicted {
                Some(cfg) => ConfigTuner::preselected(cfg),
                None => ConfigTuner::new(list, threshold),
            },
            pending: Pending::Idle,
            probe: None,
            covered: false,
            ipc_stats: OnlineStats::new(),
            invocations_after_tuned: 0,
            tuned_ipc: None,
            retunings: 0,
            covered_instr: 0,
            signature: None,
            warm: false,
        });
        if is_new {
            tel.emit(|| Event::TuningStarted {
                scope: Scope::Hotspot { method: method.0 },
                configs,
                instret: machine.instret(),
            });
        }

        state.pending = Pending::Idle;
        state.covered = false;

        if let Some(best) = state.tuner.best() {
            // Configuration code: set the chosen configuration.
            let mut applied = 0;
            let ok = best.request_traced(machine, &mut applied, &tel, ReconfigCause::Apply);
            state.covered = ok && best.in_effect(machine);
            state.invocations_after_tuned += 1;
            if state.invocations_after_tuned.is_multiple_of(sample_period) {
                state.pending = Pending::Sample;
            }
            self.stats[cu.index()].reconfigs += applied;
        } else if let Some(trial) = state.tuner.next_trial() {
            // Tuning code: fetch the next configuration. A configuration is
            // *measured* only on an invocation where it was already in
            // effect: the invocation that applies the change absorbs the
            // transition (flush, refills) unmeasured, and hotspots recur in
            // back-to-back invocations, so the next invocation measures the
            // configuration's steady behavior.
            let mut applied = 0;
            let ok = trial.request_traced(machine, &mut applied, &tel, ReconfigCause::Trial);
            self.trial_changes += applied;
            if ok && applied == 0 {
                state.pending = Pending::Trial;
            }
        }
        // Arm the measurement *after* any reconfiguration: the tuning code
        // reads the counters once the transition has completed, so a trial
        // compares configurations' steady behavior rather than charging the
        // one-time flush to whichever configuration happened to be next.
        if let Some(state) = self.states.get_mut(&method) {
            state.probe = Some(Probe::arm(machine, &self.model));
        }
    }

    fn handle_exit(&mut self, method: MethodId, class: HotspotClass, machine: &mut Machine) {
        let Some(cu) = class.cu() else {
            return;
        };
        let retune_threshold = self.config.retune_threshold;
        let perf_threshold = self.config.perf_threshold;
        let decouple_list = self.list_for(class);
        let model = self.model;
        let tel = self.tel.clone();
        let Some(state) = self.states.get_mut(&method) else {
            return;
        };
        let Some(probe) = state.probe.take() else {
            return;
        };
        let Some(m) = probe.finish(machine, &model) else {
            return;
        };

        state.ipc_stats.push(m.ipc);
        if state.covered {
            state.covered_instr += m.instr;
        }
        if let Some(hm) = &self.hs_metrics {
            hm.invocation_instr.record(m.instr as f64);
            hm.invocation_epi_nj.record(m.epi_nj);
        }

        let scope = Scope::Hotspot { method: method.0 };
        let mut tunings = 0;
        match state.pending {
            Pending::Trial => {
                let first_trial = state.tuner.trials() == 0;
                state.tuner.record_traced(m, &tel, scope, machine.instret());
                tunings = 1;
                if state.tuner.is_done() {
                    state.tuned_ipc = state.tuner.best_measurement().map(|bm| bm.ipc);
                }
                // Warm start: the reference (full-size) trial just measured
                // gives the behavioral half of the signature, so this is the
                // earliest the shared store can be consulted. A hit replaces
                // the remaining candidate walk with the stored selection.
                if first_trial {
                    if let Some(ctx) = &self.warm {
                        let avg = self.sizes.get(&method).copied().unwrap_or(m.instr);
                        let mask = cu_mask_of(state.tuner.configs());
                        let sig = HotspotSignature::new(avg, m.ipc, mask, ctx.version());
                        state.signature = Some(sig);
                        if !state.tuner.is_done() {
                            match ctx.lookup(sig) {
                                Some(cfg) => {
                                    let saved = (state.tuner.list_len() as u32).saturating_sub(1);
                                    state.tuner = ConfigTuner::preselected(cfg);
                                    state.tuned_ipc = Some(m.ipc);
                                    state.warm = true;
                                    self.warm_hits += 1;
                                    self.warm_trials_saved += u64::from(saved);
                                    tel.emit(|| Event::WarmStartHit {
                                        scope,
                                        signature: sig.packed(),
                                        trials_saved: saved,
                                        instret: machine.instret(),
                                    });
                                    // Close the trace episode: the selection
                                    // is final after this single trial.
                                    tel.emit(|| Event::TuningConverged {
                                        scope,
                                        trials: 1,
                                        ipc: m.ipc,
                                        epi_nj: m.epi_nj,
                                        instret: machine.instret(),
                                    });
                                }
                                None => {
                                    self.warm_misses += 1;
                                    tel.emit(|| Event::WarmStartMiss {
                                        scope,
                                        signature: sig.packed(),
                                        instret: machine.instret(),
                                    });
                                }
                            }
                        }
                    }
                }
                // Publish on cold convergence (warm adoptions republish
                // nothing: the store already has the entry).
                if state.tuner.is_done() && !state.warm {
                    if let (Some(sig), Some(best), Some(bm)) = (
                        state.signature,
                        state.tuner.best(),
                        state.tuner.best_measurement(),
                    ) {
                        if let Some(ctx) = self.warm.as_mut() {
                            ctx.publish(StorePublication {
                                signature: sig,
                                config: best,
                                ipc: bm.ipc,
                                epi_nj: bm.epi_nj,
                                trials: state.tuner.trials(),
                            });
                            self.store_publishes += 1;
                            tel.emit(|| Event::StorePublish {
                                scope,
                                signature: sig.packed(),
                                epi_nj: bm.epi_nj,
                                instret: machine.instret(),
                            });
                        }
                    }
                }
            }
            Pending::Sample => {
                if let Some(tuned) = state.tuned_ipc {
                    let drift = (m.ipc - tuned).abs() / tuned;
                    if drift > retune_threshold {
                        // Behavior changed: discard the selection, re-tune.
                        let configs = decouple_list.len() as u32;
                        state.tuner = ConfigTuner::new(decouple_list, perf_threshold);
                        state.tuned_ipc = None;
                        // Drifted behavior means a new working set: the old
                        // signature no longer describes this hotspot, so the
                        // fresh episode re-signs and re-consults the store.
                        state.signature = None;
                        state.warm = false;
                        state.invocations_after_tuned = 0;
                        state.retunings += 1;
                        self.retunings += 1;
                        tel.emit(|| Event::DriftRetune {
                            scope,
                            drift,
                            instret: machine.instret(),
                        });
                        tel.emit(|| Event::TuningStarted {
                            scope,
                            configs,
                            instret: machine.instret(),
                        });
                    }
                }
            }
            Pending::Idle => {}
        }
        state.pending = Pending::Idle;
        if tunings > 0 {
            self.cu_stats_mut(cu).tunings += tunings;
        }
    }

    /// Builds the end-of-run report. `guard_rejections` is left at zero;
    /// fill it from the run's machine counters (the driver's `RunRecord`
    /// carries them), since rejections are counted by the hardware.
    pub fn report(&self) -> HotspotReport {
        let mut report = HotspotReport {
            cu: self.stats,
            retunings: self.retunings,
            small_hotspots: self.small_seen,
            warm_hits: self.warm_hits,
            warm_misses: self.warm_misses,
            warm_trials_saved: self.warm_trials_saved,
            store_publishes: self.store_publishes,
            ..HotspotReport::default()
        };
        let mut cov_sum = 0.0;
        let mut cov_n = 0u64;
        let mut means = OnlineStats::new();
        // Iterate in MethodId order: float accumulation is not associative,
        // so HashMap's per-process ordering would make reports differ in
        // the last ULP between otherwise identical runs.
        let mut ordered: Vec<(&MethodId, &HsState)> = self.states.iter().collect();
        ordered.sort_by_key(|(m, _)| m.0);
        for (_, state) in ordered {
            if let Some(cu) = state.class.cu() {
                report.cu_hotspots[cu.index()] += 1;
            }
            if state.tuner.is_done() {
                report.tuned_hotspots += 1;
            }
            if state.ipc_stats.count() >= 2 {
                cov_sum += state.ipc_stats.cov();
                cov_n += 1;
            }
            if state.ipc_stats.count() > 0 {
                means.push(state.ipc_stats.mean());
            }
            if let Some(cu) = state.class.cu() {
                let stats = &mut report.cu[cu.index()];
                stats.covered_instr = stats.covered_instr.saturating_add(state.covered_instr);
            }
        }
        // `covered_instr` in the aggregate stats was never filled globally;
        // it is assembled from the per-state counters above.
        report.per_hotspot_ipc_cov = if cov_n > 0 {
            cov_sum / cov_n as f64
        } else {
            0.0
        };
        report.inter_hotspot_ipc_cov = means.cov();
        report
    }

    /// Per-hotspot diagnostic: `(class, tuned, invocations_measured)`.
    pub fn hotspot_state(&self, method: MethodId) -> Option<(HotspotClass, bool, u64)> {
        self.states
            .get(&method)
            .map(|s| (s.class, s.tuner.is_done(), s.ipc_stats.count()))
    }

    /// Detailed per-hotspot diagnostics for analysis tools:
    /// `(method, class, tuner, mean IPC, IPC CoV, invocations measured)`.
    pub fn hotspot_details(
        &self,
    ) -> impl Iterator<Item = (MethodId, HotspotClass, &ConfigTuner, f64, f64, u64)> {
        self.states.iter().map(|(m, s)| {
            (
                *m,
                s.class,
                &s.tuner,
                s.ipc_stats.mean(),
                s.ipc_stats.cov(),
                s.ipc_stats.count(),
            )
        })
    }

    /// Number of hotspots with manager state.
    pub fn tracked_hotspots(&self) -> usize {
        self.states.len()
    }
}

impl AceManager for HotspotAceManager {
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.hs_metrics = HsMetrics::resolve(&telemetry);
        self.tel = telemetry;
    }

    fn on_event(&mut self, event: DoEvent, machine: &mut Machine) {
        match event {
            DoEvent::HotspotEnter { method, class } => self.handle_enter(method, class, machine),
            DoEvent::HotspotExit { method, class, .. } => self.handle_exit(method, class, machine),
            DoEvent::HotspotClassified {
                class: HotspotClass::TooSmall,
                ..
            } => {
                self.small_seen += 1;
            }
            DoEvent::HotspotClassified {
                method, avg_size, ..
            } => {
                // Adaptable hotspot: keep its phase grain for the store
                // signature computed after the reference trial.
                self.sizes.insert(method, avg_size);
            }
            DoEvent::None => {}
        }
    }

    fn on_block(&mut self, _block: &Block, _machine: &mut Machine) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::SizeLevel;

    #[test]
    fn default_config_matches_paper() {
        let c = HotspotManagerConfig::default();
        assert!((c.perf_threshold - 0.02).abs() < 1e-12);
        assert!(c.decouple);
    }

    #[test]
    fn decoupled_lists_are_small() {
        let mgr = HotspotAceManager::new(
            HotspotManagerConfig::default(),
            EnergyModel::default_180nm(),
        );
        assert_eq!(mgr.list_for(HotspotClass::L1d).len(), 4);
        assert_eq!(mgr.list_for(HotspotClass::L2).len(), 4);
        let coupled = HotspotAceManager::new(
            HotspotManagerConfig {
                decouple: false,
                ..Default::default()
            },
            EnergyModel::default_180nm(),
        );
        assert_eq!(coupled.list_for(HotspotClass::L1d).len(), 16);
    }

    #[test]
    fn l1d_list_touches_only_l1d() {
        let mgr = HotspotAceManager::new(
            HotspotManagerConfig::default(),
            EnergyModel::default_180nm(),
        );
        for cfg in mgr.list_for(HotspotClass::L1d) {
            assert!(cfg.touches(CuId::L1d));
            assert!(!cfg.touches(CuId::L2));
        }
        assert_eq!(
            mgr.list_for(HotspotClass::L2)[3],
            AceConfig::l2_only(SizeLevel::SMALLEST)
        );
    }

    #[test]
    fn report_empty_run() {
        let mgr = HotspotAceManager::new(
            HotspotManagerConfig::default(),
            EnergyModel::default_180nm(),
        );
        let r = mgr.report();
        assert_eq!(r.l1d_hotspots() + r.l2_hotspots(), 0);
        assert_eq!(r.tuned_fraction(), 0.0);
    }
}
