//! Phase Distance Mapping (PDM) — the third contender scheme.
//!
//! Adegbija, Gordon-Ross & Munir observe that phases with similar
//! runtime behavior favor similar configurations, so a new phase's best
//! configuration can be *predicted* from its behavioral distance to an
//! already-tuned phase instead of re-walking the candidate list. This
//! manager keeps the DO-hotspot substrate intact — the same hotspot
//! boundaries, decoupled candidate lists, drift sampling and re-tuning —
//! and adds a knowledge table of `(behavioral vector, selection)` pairs
//! consulted right after each hotspot's reference trial:
//!
//! * **hit** (distance below [`PdmManagerConfig::distance_threshold`]):
//!   the stored selection is adopted directly; the remaining candidate
//!   walk is skipped, exactly like a fleet warm start, and a
//!   [`ace_telemetry::Event::PdmPredictHit`] records the trials saved.
//! * **miss**: tuning falls back to the search path, and the eventual
//!   cold convergence is inserted into the knowledge table.
//!
//! With `distance_threshold` 0 the strict `<` comparison can never hit,
//! so the manager's machine interactions degrade *exactly* to the
//! hotspot search path — pinned by a differential test.

use crate::cu::AceConfig;
use crate::hotspot::{CuSchemeStats, HotspotReport};
use crate::measure::Probe;
use crate::tuner::ConfigTuner;
use crate::warm::cu_mask_of;
use crate::{combined_list, single_cu_list, HotspotManagerConfig};
use ace_energy::EnergyModel;
use ace_runtime::{DoEvent, HotspotClass};
use ace_sim::{Block, Machine, OnlineStats, MAX_CUS};
use ace_telemetry::{Event, ReconfigCause, Scope, Telemetry};
use ace_workloads::MethodId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::manager::AceManager;

/// Configuration of the PDM manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdmManagerConfig {
    /// The hotspot-substrate policy (thresholds, sampling, decoupling).
    pub base: HotspotManagerConfig,
    /// Maximum normalized behavioral distance at which an already-tuned
    /// phase's selection is adopted without searching. `0.0` disables
    /// prediction entirely (strict `<`), degrading to hotspot search.
    pub distance_threshold: f64,
}

impl Default for PdmManagerConfig {
    fn default() -> Self {
        PdmManagerConfig {
            base: HotspotManagerConfig::default(),
            distance_threshold: 0.25,
        }
    }
}

/// A phase's behavioral vector, captured at its reference (full-size)
/// trial: the paper's "phase distance" compares phases by what they do,
/// not where they are in the code.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseVector {
    /// IPC of the reference trial.
    pub ipc: f64,
    /// Cache energy per instruction of the reference trial (nanojoules).
    pub epi_nj: f64,
    /// `log2` of the mean invocation size — phases an order of magnitude
    /// apart in grain rarely share a best configuration.
    pub log_size: f64,
}

/// Normalization scales: each component is divided by the span it can
/// realistically cover so no single dimension dominates the mean.
const IPC_SCALE: f64 = 4.0;
const EPI_SCALE: f64 = 2.0;
const LOG_SIZE_SCALE: f64 = 8.0;

impl PhaseVector {
    /// Builds a vector from reference-trial measurements.
    pub fn new(ipc: f64, epi_nj: f64, avg_size: u64) -> PhaseVector {
        PhaseVector {
            ipc,
            epi_nj,
            log_size: (avg_size.max(1) as f64).log2(),
        }
    }

    /// Normalized distance to `other`: the mean of per-component absolute
    /// differences, each scaled to its realistic span. 0 means
    /// behaviorally identical; 1 means maximally far on every axis.
    pub fn distance(&self, other: &PhaseVector) -> f64 {
        let d_ipc = (self.ipc - other.ipc).abs() / IPC_SCALE;
        let d_epi = (self.epi_nj - other.epi_nj).abs() / EPI_SCALE;
        let d_size = (self.log_size - other.log_size).abs() / LOG_SIZE_SCALE;
        (d_ipc + d_epi + d_size) / 3.0
    }
}

/// Nearest entry of `table` with a matching CU mask. Linear scan in
/// insertion order; strict `<` keeps the first-inserted entry on ties,
/// so lookups are deterministic.
fn nearest_in(
    table: &[(u8, PhaseVector, AceConfig)],
    mask: u8,
    vector: &PhaseVector,
) -> Option<(f64, AceConfig)> {
    let mut best: Option<(f64, AceConfig)> = None;
    for (m, v, cfg) in table {
        if *m != mask {
            continue;
        }
        let d = vector.distance(v);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, *cfg));
        }
    }
    best
}

/// What the current invocation of a hotspot is being used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    Trial,
    Sample,
    Idle,
}

/// Per-hotspot manager state.
#[derive(Debug, Clone)]
struct PdmState {
    class: HotspotClass,
    tuner: ConfigTuner,
    pending: Pending,
    probe: Option<Probe>,
    covered: bool,
    ipc_stats: OnlineStats,
    invocations_after_tuned: u64,
    tuned_ipc: Option<f64>,
    retunings: u32,
    covered_instr: u64,
    /// Behavioral vector, known once the reference trial has measured.
    vector: Option<PhaseVector>,
    /// Whether the selection was adopted by prediction.
    predicted: bool,
}

/// End-of-run report of the PDM scheme.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PdmReport {
    /// The hotspot-substrate counters (same shape as the hotspot scheme's
    /// report, so the headline tables compare like with like).
    pub base: HotspotReport,
    /// Predictions adopted directly.
    pub predict_hits: u64,
    /// First trials that fell back to the search path.
    pub predict_misses: u64,
    /// Candidate-list trials avoided across all hits.
    pub predicted_trials_saved: u64,
    /// Entries in the knowledge table at end of run.
    pub known_phases: u64,
}

impl PdmReport {
    /// Fraction of prediction attempts that hit (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.predict_hits + self.predict_misses;
        if lookups == 0 {
            0.0
        } else {
            self.predict_hits as f64 / lookups as f64
        }
    }
}

/// The phase-distance-mapping ACE manager.
///
/// Run it through the scheme registry (`Experiment::preset(..)
/// .scheme("pdm")`) or construct it directly for ablations.
#[derive(Debug, Clone)]
pub struct PdmAceManager {
    config: PdmManagerConfig,
    model: EnergyModel,
    states: HashMap<MethodId, PdmState>,
    stats: [CuSchemeStats; MAX_CUS],
    retunings: u64,
    trial_changes: u64,
    small_seen: u64,
    /// The knowledge table: `(candidate-list CU mask, behavioral vector,
    /// converged selection)` in insertion order. Predictions only match
    /// entries with the same mask, so an L1D-band phase never adopts an
    /// L2 selection.
    table: Vec<(u8, PhaseVector, AceConfig)>,
    /// Mean invocation size per classified hotspot, for the size
    /// component of the behavioral vector.
    sizes: HashMap<MethodId, u64>,
    predict_hits: u64,
    predict_misses: u64,
    predicted_trials_saved: u64,
    tel: Telemetry,
}

impl PdmAceManager {
    /// Creates a manager with the given policy and energy model.
    pub fn new(config: PdmManagerConfig, model: EnergyModel) -> PdmAceManager {
        PdmAceManager {
            config,
            model,
            states: HashMap::new(),
            stats: [CuSchemeStats::default(); MAX_CUS],
            retunings: 0,
            trial_changes: 0,
            small_seen: 0,
            table: Vec::new(),
            sizes: HashMap::new(),
            predict_hits: 0,
            predict_misses: 0,
            predicted_trials_saved: 0,
            tel: Telemetry::off(),
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &PdmManagerConfig {
        &self.config
    }

    /// Entries in the knowledge table.
    pub fn known_phases(&self) -> usize {
        self.table.len()
    }

    fn list_for(&self, class: HotspotClass) -> Vec<AceConfig> {
        if !self.config.base.decouple {
            return combined_list();
        }
        match class.cu() {
            Some(cu) => single_cu_list(cu),
            None => unreachable!("small hotspots are not tuned"),
        }
    }

    fn handle_enter(&mut self, method: MethodId, class: HotspotClass, machine: &mut Machine) {
        let Some(cu) = class.cu() else {
            return;
        };
        let list = self.list_for(class);
        let threshold = self.config.base.perf_threshold;
        let sample_period = self.config.base.sample_period;
        let tel = self.tel.clone();
        let is_new = !self.states.contains_key(&method);
        let configs = list.len() as u32;
        let state = self.states.entry(method).or_insert_with(|| PdmState {
            class,
            tuner: ConfigTuner::new(list, threshold),
            pending: Pending::Idle,
            probe: None,
            covered: false,
            ipc_stats: OnlineStats::new(),
            invocations_after_tuned: 0,
            tuned_ipc: None,
            retunings: 0,
            covered_instr: 0,
            vector: None,
            predicted: false,
        });
        if is_new {
            tel.emit(|| Event::TuningStarted {
                scope: Scope::Hotspot { method: method.0 },
                configs,
                instret: machine.instret(),
            });
        }

        state.pending = Pending::Idle;
        state.covered = false;

        if let Some(best) = state.tuner.best() {
            let mut applied = 0;
            let ok = best.request_traced(machine, &mut applied, &tel, ReconfigCause::Apply);
            state.covered = ok && best.in_effect(machine);
            state.invocations_after_tuned += 1;
            if state.invocations_after_tuned.is_multiple_of(sample_period) {
                state.pending = Pending::Sample;
            }
            self.stats[cu.index()].reconfigs += applied;
        } else if let Some(trial) = state.tuner.next_trial() {
            let mut applied = 0;
            let ok = trial.request_traced(machine, &mut applied, &tel, ReconfigCause::Trial);
            self.trial_changes += applied;
            if ok && applied == 0 {
                state.pending = Pending::Trial;
            }
        }
        if let Some(state) = self.states.get_mut(&method) {
            state.probe = Some(Probe::arm(machine, &self.model));
        }
    }

    fn handle_exit(&mut self, method: MethodId, class: HotspotClass, machine: &mut Machine) {
        let Some(cu) = class.cu() else {
            return;
        };
        let retune_threshold = self.config.base.retune_threshold;
        let perf_threshold = self.config.base.perf_threshold;
        let decouple_list = self.list_for(class);
        let distance_threshold = self.config.distance_threshold;
        let model = self.model;
        let tel = self.tel.clone();
        let avg_size = self.sizes.get(&method).copied();
        let Some(state) = self.states.get_mut(&method) else {
            return;
        };
        let Some(probe) = state.probe.take() else {
            return;
        };
        let Some(m) = probe.finish(machine, &model) else {
            return;
        };

        state.ipc_stats.push(m.ipc);
        if state.covered {
            state.covered_instr += m.instr;
        }

        let scope = Scope::Hotspot { method: method.0 };
        let mut tunings = 0;
        let mut prediction: Option<(f64, Option<(u32, AceConfig)>)> = None;
        let mut cold_insert: Option<(u8, PhaseVector, AceConfig)> = None;
        match state.pending {
            Pending::Trial => {
                let first_trial = state.tuner.trials() == 0;
                state.tuner.record_traced(m, &tel, scope, machine.instret());
                tunings = 1;
                if state.tuner.is_done() {
                    state.tuned_ipc = state.tuner.best_measurement().map(|bm| bm.ipc);
                }
                // Phase distance mapping: the reference trial just measured
                // gives the behavioral vector, so this is the earliest the
                // knowledge table can be consulted. A near-enough tuned
                // phase's selection replaces the remaining candidate walk.
                if first_trial {
                    let avg = avg_size.unwrap_or(m.instr);
                    let vector = PhaseVector::new(m.ipc, m.epi_nj, avg);
                    state.vector = Some(vector);
                    if !state.tuner.is_done() {
                        let mask = cu_mask_of(state.tuner.configs());
                        match nearest_in(&self.table, mask, &vector) {
                            Some((d, cfg)) if d < distance_threshold => {
                                let saved = (state.tuner.list_len() as u32).saturating_sub(1);
                                state.tuner = ConfigTuner::preselected(cfg);
                                state.tuned_ipc = Some(m.ipc);
                                state.predicted = true;
                                prediction = Some((d, Some((saved, cfg))));
                            }
                            nearest => {
                                // -1.0 marks "no candidate to measure
                                // against" without a non-finite JSON value.
                                prediction = Some((nearest.map_or(-1.0, |(d, _)| d), None));
                            }
                        }
                    }
                }
                // A cold convergence becomes knowledge the next phase can
                // predict from (predicted adoptions add nothing new).
                if state.tuner.is_done() && !state.predicted {
                    if let (Some(vector), Some(best)) = (state.vector, state.tuner.best()) {
                        let mask = cu_mask_of(state.tuner.configs());
                        cold_insert = Some((mask, vector, best));
                    }
                }
            }
            Pending::Sample => {
                if let Some(tuned) = state.tuned_ipc {
                    let drift = (m.ipc - tuned).abs() / tuned;
                    if drift > retune_threshold {
                        let configs = decouple_list.len() as u32;
                        state.tuner = ConfigTuner::new(decouple_list, perf_threshold);
                        state.tuned_ipc = None;
                        // Drifted behavior means a new working set: the old
                        // vector no longer describes this phase, so the
                        // fresh episode re-measures and re-predicts.
                        state.vector = None;
                        state.predicted = false;
                        state.invocations_after_tuned = 0;
                        state.retunings += 1;
                        self.retunings += 1;
                        tel.emit(|| Event::DriftRetune {
                            scope,
                            drift,
                            instret: machine.instret(),
                        });
                        tel.emit(|| Event::TuningStarted {
                            scope,
                            configs,
                            instret: machine.instret(),
                        });
                    }
                }
            }
            Pending::Idle => {}
        }
        state.pending = Pending::Idle;
        if tunings > 0 {
            self.stats[cu.index()].tunings += tunings;
        }
        match prediction {
            Some((distance, Some((saved, _cfg)))) => {
                self.predict_hits += 1;
                self.predicted_trials_saved += u64::from(saved);
                tel.emit(|| Event::PdmPredictHit {
                    scope,
                    distance,
                    trials_saved: saved,
                    instret: machine.instret(),
                });
                // Close the trace episode: the selection is final after
                // this single trial.
                tel.emit(|| Event::TuningConverged {
                    scope,
                    trials: 1,
                    ipc: m.ipc,
                    epi_nj: m.epi_nj,
                    instret: machine.instret(),
                });
            }
            Some((distance, None)) => {
                self.predict_misses += 1;
                tel.emit(|| Event::PdmPredictMiss {
                    scope,
                    distance,
                    instret: machine.instret(),
                });
            }
            None => {}
        }
        if let Some(entry) = cold_insert {
            self.table.push(entry);
        }
    }

    /// Builds the end-of-run report. `base.guard_rejections` is left at
    /// zero; fill it from the run's machine counters.
    pub fn report(&self) -> PdmReport {
        let mut base = HotspotReport {
            cu: self.stats,
            retunings: self.retunings,
            small_hotspots: self.small_seen,
            ..HotspotReport::default()
        };
        let mut cov_sum = 0.0;
        let mut cov_n = 0u64;
        let mut means = OnlineStats::new();
        // MethodId order: float accumulation is not associative.
        let mut ordered: Vec<(&MethodId, &PdmState)> = self.states.iter().collect();
        ordered.sort_by_key(|(m, _)| m.0);
        for (_, state) in ordered {
            if let Some(cu) = state.class.cu() {
                base.cu_hotspots[cu.index()] += 1;
            }
            if state.tuner.is_done() {
                base.tuned_hotspots += 1;
            }
            if state.ipc_stats.count() >= 2 {
                cov_sum += state.ipc_stats.cov();
                cov_n += 1;
            }
            if state.ipc_stats.count() > 0 {
                means.push(state.ipc_stats.mean());
            }
            if let Some(cu) = state.class.cu() {
                let stats = &mut base.cu[cu.index()];
                stats.covered_instr = stats.covered_instr.saturating_add(state.covered_instr);
            }
        }
        base.per_hotspot_ipc_cov = if cov_n > 0 {
            cov_sum / cov_n as f64
        } else {
            0.0
        };
        base.inter_hotspot_ipc_cov = means.cov();
        PdmReport {
            base,
            predict_hits: self.predict_hits,
            predict_misses: self.predict_misses,
            predicted_trials_saved: self.predicted_trials_saved,
            known_phases: self.table.len() as u64,
        }
    }
}

impl AceManager for PdmAceManager {
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.tel = telemetry;
    }

    fn on_event(&mut self, event: DoEvent, machine: &mut Machine) {
        match event {
            DoEvent::HotspotEnter { method, class } => self.handle_enter(method, class, machine),
            DoEvent::HotspotExit { method, class, .. } => self.handle_exit(method, class, machine),
            DoEvent::HotspotClassified {
                class: HotspotClass::TooSmall,
                ..
            } => {
                self.small_seen += 1;
            }
            DoEvent::HotspotClassified {
                method, avg_size, ..
            } => {
                self.sizes.insert(method, avg_size);
            }
            DoEvent::None => {}
        }
    }

    fn on_block(&mut self, _block: &Block, _machine: &mut Machine) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_distance() {
        let v = PhaseVector::new(1.5, 0.8, 100_000);
        assert_eq!(v.distance(&v), 0.0);
    }

    #[test]
    fn distance_is_symmetric_and_scales() {
        let a = PhaseVector::new(1.0, 0.5, 100_000);
        let b = PhaseVector::new(2.0, 0.5, 100_000);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-15);
        // One IPC apart over scale 4, averaged over 3 components.
        assert!((a.distance(&b) - (1.0 / 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_respects_cu_mask_and_ties() {
        use ace_sim::SizeLevel;
        let v = PhaseVector::new(1.0, 0.5, 100_000);
        let cfg_a = AceConfig::l1d_only(SizeLevel::SMALLEST);
        let cfg_b = AceConfig::l1d_only(SizeLevel::LARGEST);
        let mut table = vec![(0b10u8, v, cfg_a)];
        // Same distance, different mask: must not match mask 0b100.
        assert!(nearest_in(&table, 0b100, &v).is_none());
        let (d, _) = nearest_in(&table, 0b10, &v).unwrap();
        assert_eq!(d, 0.0);
        // A later equally-near entry does not displace the first.
        table.push((0b10, v, cfg_b));
        let (_, picked) = nearest_in(&table, 0b10, &v).unwrap();
        assert_eq!(picked, cfg_a);
    }

    #[test]
    fn zero_threshold_never_predicts() {
        let cfg = PdmManagerConfig {
            distance_threshold: 0.0,
            ..PdmManagerConfig::default()
        };
        let v = PhaseVector::new(1.0, 0.5, 100_000);
        // Even an exact match is rejected by the strict `<`.
        let table = vec![(0b10u8, v, AceConfig::default())];
        let (d, _) = nearest_in(&table, 0b10, &v).unwrap();
        assert!(d >= cfg.distance_threshold, "strict < never fires at 0");
    }

    #[test]
    fn report_empty_run() {
        let mgr = PdmAceManager::new(PdmManagerConfig::default(), EnergyModel::default_180nm());
        let r = mgr.report();
        assert_eq!(r.base.tuned_hotspots, 0);
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.known_phases, 0);
    }
}
