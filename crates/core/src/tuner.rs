//! The tuning state machine shared by both managers (Section 3.2.2).
//!
//! A tuner walks a configuration list (largest configuration first, so the
//! first measurement doubles as the performance reference), records one
//! measurement per configuration, aborts early once a configuration
//! degrades IPC past the performance threshold, and finally selects the
//! most energy-efficient configuration among those meeting the threshold.
//!
//! The hotspot manager instantiates one tuner per hotspot over a
//! *decoupled* 4-entry list; the BBV manager instantiates one per phase
//! over the full 16-entry combinatorial list (resumable across phase
//! recurrences, as the paper grants its BBV implementation).

use crate::cu::AceConfig;
use crate::measure::Measurement;
use ace_telemetry::{Event, Scope, Telemetry};
use serde::{Deserialize, Serialize};

/// A configuration-list tuner.
///
/// # Examples
///
/// ```
/// use ace_core::{ConfigTuner, Measurement, single_cu_list};
/// use ace_sim::CuKind;
///
/// let mut t = ConfigTuner::new(single_cu_list(CuKind::L1d), 0.02);
/// while let Some(_cfg) = t.next_trial() {
///     // ...run one invocation under _cfg and measure it...
///     t.record(Measurement { instr: 100_000, ipc: 2.0, epi_nj: 1.0 });
/// }
/// assert!(t.is_done());
/// assert!(t.best().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigTuner {
    configs: Vec<AceConfig>,
    measurements: Vec<Option<Measurement>>,
    next_idx: usize,
    perf_threshold: f64,
    best: Option<usize>,
    trials: u32,
    /// Configurations that violated the performance threshold; anything
    /// they dominate (equal or smaller in every touched unit) is pruned
    /// from the remaining walk instead of being tested.
    violated: Vec<AceConfig>,
}

impl ConfigTuner {
    /// Creates a tuner over `configs` with an IPC degradation bound of
    /// `perf_threshold` (e.g. `0.02` for the paper's 2 %).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or the threshold is not in `[0, 1)`.
    pub fn new(configs: Vec<AceConfig>, perf_threshold: f64) -> ConfigTuner {
        assert!(!configs.is_empty(), "need at least one configuration");
        assert!(
            (0.0..1.0).contains(&perf_threshold),
            "threshold must be in [0, 1)"
        );
        ConfigTuner {
            measurements: vec![None; configs.len()],
            configs,
            next_idx: 0,
            perf_threshold,
            best: None,
            trials: 0,
            violated: Vec::new(),
        }
    }

    /// A tuner that is born finished with `config` selected — used when a
    /// configuration *prediction* (e.g. from JIT-time code analysis, the
    /// paper's Section 6 extension) replaces the runtime search entirely.
    pub fn preselected(config: AceConfig) -> ConfigTuner {
        ConfigTuner {
            configs: vec![config],
            measurements: vec![None],
            next_idx: 1,
            perf_threshold: 0.0,
            best: Some(0),
            trials: 0,
            violated: Vec::new(),
        }
    }

    /// `true` once the best configuration has been selected.
    pub fn is_done(&self) -> bool {
        self.best.is_some()
    }

    /// The configuration to test next, or `None` when tuning is complete.
    pub fn next_trial(&self) -> Option<AceConfig> {
        if self.is_done() {
            None
        } else {
            self.configs.get(self.next_idx).copied()
        }
    }

    /// Records the measurement for the configuration returned by the last
    /// [`ConfigTuner::next_trial`] call, advancing the walk. A measurement
    /// that violates the performance threshold prunes every remaining
    /// configuration it dominates (capacity monotonicity: shrinking
    /// further cannot recover the lost IPC); selection happens when no
    /// testable configurations remain.
    ///
    /// # Panics
    ///
    /// Panics if called after tuning finished.
    pub fn record(&mut self, m: Measurement) {
        assert!(!self.is_done(), "tuning already finished");
        self.measurements[self.next_idx] = Some(m);
        self.trials += 1;
        let violates = self
            .reference_ipc()
            .is_some_and(|base| m.ipc < base * (1.0 - self.perf_threshold) && self.next_idx > 0);
        if violates {
            self.violated.push(self.configs[self.next_idx]);
        }
        self.next_idx += 1;
        self.skip_pruned();
        if self.next_idx >= self.configs.len() {
            self.finalize();
        }
    }

    /// Like [`ConfigTuner::record`], but emits [`Event::TuningStep`] — and
    /// [`Event::TuningConverged`] when this measurement completes the
    /// episode — attributed to `scope` and stamped with `instret`.
    ///
    /// Telemetry rides alongside the state machine rather than inside it
    /// so the tuner stays a plain comparable/serialisable value.
    ///
    /// # Panics
    ///
    /// Panics if called after tuning finished (same as
    /// [`ConfigTuner::record`]).
    pub fn record_traced(&mut self, m: Measurement, tel: &Telemetry, scope: Scope, instret: u64) {
        let trial = self.next_idx as u32;
        self.record(m);
        tel.emit(|| Event::TuningStep {
            scope,
            trial,
            ipc: m.ipc,
            epi_nj: m.epi_nj,
            instret,
        });
        if self.is_done() {
            let best = self.best_measurement();
            tel.emit(|| Event::TuningConverged {
                scope,
                trials: self.trials,
                ipc: best.map_or(0.0, |b| b.ipc),
                epi_nj: best.map_or(0.0, |b| b.epi_nj),
                instret,
            });
        }
    }

    /// Advances past configurations pruned by recorded violations.
    fn skip_pruned(&mut self) {
        while let Some(cfg) = self.configs.get(self.next_idx) {
            if self.violated.iter().any(|v| cfg.dominated_by(v)) {
                self.next_idx += 1;
            } else {
                break;
            }
        }
    }

    /// IPC of the first (largest) configuration — the reference the
    /// performance threshold is measured against.
    pub fn reference_ipc(&self) -> Option<f64> {
        self.measurements[0].map(|m| m.ipc)
    }

    /// Completes tuning immediately, selecting from what was measured.
    pub fn finalize(&mut self) {
        let reference = self.reference_ipc();
        let mut best = 0usize;
        let mut best_epi = f64::INFINITY;
        for (i, m) in self.measurements.iter().enumerate() {
            let Some(m) = m else { continue };
            let ok = match reference {
                Some(base) => i == 0 || m.ipc >= base * (1.0 - self.perf_threshold),
                None => true,
            };
            if ok && m.epi_nj < best_epi {
                best_epi = m.epi_nj;
                best = i;
            }
        }
        self.best = Some(best);
    }

    /// The selected configuration (after tuning completes).
    pub fn best(&self) -> Option<AceConfig> {
        self.best.map(|i| self.configs[i])
    }

    /// The measurement of the selected configuration.
    pub fn best_measurement(&self) -> Option<Measurement> {
        self.best.and_then(|i| self.measurements[i])
    }

    /// Number of configuration trials recorded.
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// Number of configurations in the list.
    pub fn list_len(&self) -> usize {
        self.configs.len()
    }

    /// The configuration list.
    pub fn configs(&self) -> &[AceConfig] {
        &self.configs
    }

    /// The per-configuration measurements recorded so far.
    pub fn measurements(&self) -> &[Option<Measurement>] {
        &self.measurements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cu::{combined_list, single_cu_list};
    use ace_sim::{CuKind, SizeLevel};

    fn meas(ipc: f64, epi: f64) -> Measurement {
        Measurement {
            instr: 100_000,
            ipc,
            epi_nj: epi,
        }
    }

    #[test]
    fn picks_min_epi_meeting_threshold() {
        let mut t = ConfigTuner::new(single_cu_list(CuKind::L1d), 0.02);
        // Baseline: ipc 2.0, epi 1.0. Level1: tiny drop, cheaper. Level2:
        // cheaper still but violates threshold handled below? no: passes.
        // Level3: cheapest but 10% slower -> rejected.
        let data = [
            meas(2.00, 1.00),
            meas(1.99, 0.80),
            meas(1.97, 0.65),
            meas(1.80, 0.40),
        ];
        for m in data {
            assert!(t.next_trial().is_some());
            t.record(m);
        }
        assert!(t.is_done());
        assert_eq!(
            t.best().unwrap(),
            AceConfig::l1d_only(SizeLevel::new(2).unwrap())
        );
        assert_eq!(t.trials(), 4);
    }

    #[test]
    fn early_abort_on_threshold_violation() {
        let mut t = ConfigTuner::new(single_cu_list(CuKind::L1d), 0.02);
        t.record(meas(2.0, 1.0));
        t.record(meas(1.5, 0.5)); // 25% degradation: abort now.
        assert!(t.is_done());
        assert_eq!(t.trials(), 2);
        // The violating config is excluded; baseline wins.
        assert_eq!(t.best().unwrap(), AceConfig::l1d_only(SizeLevel::LARGEST));
    }

    #[test]
    fn baseline_never_rejected() {
        let mut t = ConfigTuner::new(single_cu_list(CuKind::L1d), 0.02);
        for _ in 0..4 {
            t.record(meas(1.0, 2.0));
        }
        assert_eq!(t.best().unwrap(), AceConfig::l1d_only(SizeLevel::LARGEST));
    }

    #[test]
    fn equal_epi_prefers_earlier_larger_config() {
        let mut t = ConfigTuner::new(single_cu_list(CuKind::L2), 0.02);
        for _ in 0..4 {
            t.record(meas(2.0, 1.0));
        }
        assert_eq!(t.best().unwrap(), AceConfig::l2_only(SizeLevel::LARGEST));
    }

    #[test]
    fn combined_list_takes_sixteen_trials() {
        let mut t = ConfigTuner::new(combined_list(), 0.02);
        let mut n = 0;
        while t.next_trial().is_some() {
            t.record(meas(2.0, 1.0 - 0.01 * n as f64));
            n += 1;
        }
        assert_eq!(n, 16, "no abort: all combinatorial configs tested");
        assert_eq!(t.trials(), 16);
        // Last config had the lowest EPI.
        assert_eq!(
            t.best().unwrap(),
            AceConfig::both(SizeLevel::SMALLEST, SizeLevel::SMALLEST)
        );
    }

    #[test]
    fn finalize_midway_uses_partial_data() {
        let mut t = ConfigTuner::new(single_cu_list(CuKind::L1d), 0.02);
        t.record(meas(2.0, 1.0));
        t.record(meas(2.0, 0.7));
        t.finalize();
        assert_eq!(
            t.best().unwrap(),
            AceConfig::l1d_only(SizeLevel::new(1).unwrap())
        );
        assert!(t.best_measurement().unwrap().epi_nj == 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn rejects_empty_list() {
        let _ = ConfigTuner::new(Vec::new(), 0.02);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn rejects_record_after_done() {
        let mut t = ConfigTuner::new(single_cu_list(CuKind::L1d), 0.02);
        t.finalize();
        t.record(meas(1.0, 1.0));
    }
}
