//! The run driver: couples a workload executor, the DO system, the
//! simulated machine, and an ACE manager into one complete run.
//!
//! Every experiment in the evaluation is one or more
//! [`crate::Experiment`] runs through this driver: the baseline uses
//! [`crate::NullManager`], the
//! paper's scheme [`crate::HotspotAceManager`], the temporal baseline
//! [`crate::BbvAceManager`], and the ablations [`crate::FixedManager`].

use crate::manager::AceManager;
use ace_energy::{EnergyBreakdown, EnergyModel};
use ace_runtime::{DoConfig, DoStats, DoSystem, Table4Row};
use ace_sim::{Block, ConfigError, Machine, MachineConfig, MachineCounters};
use ace_telemetry::Telemetry;
use ace_workloads::{Executor, Program, Step};
use serde::{Deserialize, Serialize};

/// Parameters of one run.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Machine configuration (Table 2 defaults).
    pub machine: MachineConfig,
    /// DO-system configuration.
    pub do_config: DoConfig,
    /// Energy model used for the run record (managers carry their own).
    pub energy: EnergyModel,
    /// Optional dynamic-instruction cap.
    pub instruction_limit: Option<u64>,
    /// Overrides the program's own executor seed (sensitivity studies).
    pub workload_seed: Option<u64>,
    /// Observability handle handed to the DO system and the manager.
    /// Defaults to [`Telemetry::off`], which costs one never-taken branch
    /// per decision point.
    pub telemetry: Telemetry,
}

/// The outcome of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Workload name.
    pub workload: String,
    /// Instructions retired.
    pub instret: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Configurable-cache energy totals.
    pub energy: EnergyBreakdown,
    /// Hotspot detection summary (Table 4).
    pub table4: Table4Row,
    /// DO-system statistics.
    pub do_stats: DoStats,
    /// Full machine counters (for downstream analysis).
    pub counters: MachineCounters,
}

impl RunRecord {
    /// Relative slowdown of this run versus `baseline` (positive = slower).
    pub fn slowdown_vs(&self, baseline: &RunRecord) -> f64 {
        if baseline.ipc == 0.0 {
            return 0.0;
        }
        1.0 - self.ipc / baseline.ipc
    }

    /// Fractional L1D energy saving versus `baseline`.
    pub fn l1d_saving_vs(&self, baseline: &RunRecord) -> f64 {
        saving(self.energy.l1d_nj, baseline.energy.l1d_nj)
    }

    /// Fractional L2 energy saving versus `baseline`.
    pub fn l2_saving_vs(&self, baseline: &RunRecord) -> f64 {
        saving(self.energy.l2_nj, baseline.energy.l2_nj)
    }
}

/// Publishes the executor's per-walk-kind block counts as metrics
/// counters (`workload.walk_blocks.<kind>`). The same profile drives the
/// hot-first ordering of the walk dispatch in `ace_workloads::Executor`;
/// exporting it makes the measured mix inspectable from any metrics dump.
pub(crate) fn publish_walk_profile(telemetry: &Telemetry, profile: [u64; 4]) {
    if let Some(metrics) = telemetry.metrics() {
        for (name, count) in ace_workloads::WALK_KIND_NAMES.iter().zip(profile) {
            if count > 0 {
                metrics
                    .counter(&format!("workload.walk_blocks.{name}"))
                    .add(count);
            }
        }
    }
}

fn saving(ours: f64, base: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        1.0 - ours / base
    }
}

/// Runs `program` under `manager`.
///
/// # Errors
///
/// Returns [`ConfigError`] if the machine configuration is invalid.
///
/// # Examples
///
/// ```
/// use ace_core::{Experiment, NullManager};
/// let record = Experiment::preset("db")
///     .instruction_limit(1_000_000)
///     .run_with(&mut NullManager)?;
/// assert!(record.instret >= 1_000_000);
/// assert!(record.ipc > 0.0);
/// # Ok::<(), ace_core::ExperimentError>(())
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Experiment::preset(..).run()` / `.run_with(&mut mgr)` instead"
)]
pub fn run_with_manager<M: AceManager>(
    program: &Program,
    cfg: &RunConfig,
    manager: &mut M,
) -> Result<RunRecord, ConfigError> {
    run_with_manager_impl(program, cfg, manager)
}

pub(crate) fn run_with_manager_impl<M: AceManager + ?Sized>(
    program: &Program,
    cfg: &RunConfig,
    manager: &mut M,
) -> Result<RunRecord, ConfigError> {
    let mut machine = Machine::new(cfg.machine.clone())?;
    let mut dos = DoSystem::new(program, cfg.do_config.clone());
    dos.set_telemetry(cfg.telemetry.clone());
    manager.set_telemetry(cfg.telemetry.clone());
    let _run_timer = cfg.telemetry.metrics().map(|m| m.timer("run_wall_ms"));
    let mut exec = match cfg.workload_seed {
        Some(seed) => Executor::with_seed(program, seed),
        None => Executor::new(program),
    };
    if let Some(limit) = cfg.instruction_limit {
        exec.set_instruction_limit(limit);
    }
    let mut buf = Block::with_capacity(64);
    // Entry instret per live frame, for raw method-exit sizes.
    let mut entry_stack: Vec<u64> = Vec::with_capacity(64);

    manager.on_start(&mut machine);
    loop {
        match exec.step(&mut buf) {
            Step::Block => {
                machine.exec_block(&buf);
                manager.on_block(&buf, &mut machine);
            }
            Step::Enter(m) => {
                entry_stack.push(machine.instret());
                manager.on_method_enter(m, &mut machine);
                let event = dos.on_enter(m, &mut machine);
                manager.on_event(event, &mut machine);
            }
            Step::Exit(m) => {
                let entered = entry_stack.pop().unwrap_or(0);
                manager.on_method_exit(m, machine.instret() - entered, &mut machine);
                let event = dos.on_exit(m, &mut machine);
                manager.on_event(event, &mut machine);
            }
            Step::Done => break,
        }
    }
    manager.on_finish(&mut machine);
    publish_walk_profile(&cfg.telemetry, exec.walk_profile());

    let counters = machine.counters().clone();
    Ok(RunRecord {
        workload: program.name().to_string(),
        instret: counters.instret,
        cycles: counters.cycles,
        ipc: counters.ipc(),
        energy: cfg.energy.breakdown(&counters),
        table4: dos.table4_summary(counters.instret),
        do_stats: *dos.stats(),
        counters,
    })
}

/// Runs a multithreaded program: `entries` are the per-thread entry
/// methods (disjoint method subtrees), time-multiplexed in `quantum_instr`
/// slices over the one simulated core — the Dynamic SimpleScalar threading
/// model, used by the dual-threaded mtrt experiment.
///
/// # Errors
///
/// Returns [`ConfigError`] if the machine configuration is invalid.
///
/// # Panics
///
/// Panics if `entries` is empty.
#[deprecated(
    since = "0.2.0",
    note = "use `Experiment::program(p).threaded(entries, quantum)` instead"
)]
pub fn run_threaded<M: AceManager>(
    program: &Program,
    entries: &[ace_workloads::MethodId],
    quantum_instr: u64,
    cfg: &RunConfig,
    manager: &mut M,
) -> Result<RunRecord, ConfigError> {
    run_threaded_impl(program, entries, quantum_instr, cfg, manager)
}

pub(crate) fn run_threaded_impl<M: AceManager + ?Sized>(
    program: &Program,
    entries: &[ace_workloads::MethodId],
    quantum_instr: u64,
    cfg: &RunConfig,
    manager: &mut M,
) -> Result<RunRecord, ConfigError> {
    use ace_workloads::{MtStep, ThreadedExecutor};

    assert!(!entries.is_empty(), "need at least one thread entry");
    let mut machine = Machine::new(cfg.machine.clone())?;
    let mut dos = DoSystem::new(program, cfg.do_config.clone());
    dos.set_telemetry(cfg.telemetry.clone());
    manager.set_telemetry(cfg.telemetry.clone());
    let _run_timer = cfg.telemetry.metrics().map(|m| m.timer("run_wall_ms"));
    let threads: Vec<_> = entries
        .iter()
        .enumerate()
        .map(|(i, &entry)| {
            let seed = cfg.workload_seed.unwrap_or(program.seed()) ^ (i as u64 + 1);
            ace_workloads::Executor::with_entry(program, entry, seed)
        })
        .collect();
    let mut mt = ThreadedExecutor::new(threads, quantum_instr);
    let mut buf = Block::with_capacity(64);
    let mut entry_stacks: Vec<Vec<u64>> = vec![Vec::new(); entries.len()];

    manager.on_start(&mut machine);
    loop {
        if let Some(limit) = cfg.instruction_limit {
            if machine.instret() >= limit {
                break;
            }
        }
        match mt.step(&mut buf) {
            MtStep::Block(_) => {
                machine.exec_block(&buf);
                manager.on_block(&buf, &mut machine);
            }
            MtStep::Switch(tid) => {
                dos.on_thread_switch(tid.0, &machine);
                // A context switch drains the pipeline and touches the
                // scheduler's state: a small fixed cost.
                machine.add_overhead_cycles(200);
            }
            MtStep::Enter(tid, m) => {
                entry_stacks[tid.0 as usize].push(machine.instret());
                manager.on_method_enter(m, &mut machine);
                let event = dos.on_enter(m, &mut machine);
                manager.on_event(event, &mut machine);
            }
            MtStep::Exit(tid, m) => {
                let entered = entry_stacks[tid.0 as usize].pop().unwrap_or(0);
                manager.on_method_exit(m, machine.instret() - entered, &mut machine);
                let event = dos.on_exit(m, &mut machine);
                manager.on_event(event, &mut machine);
            }
            MtStep::Done => break,
        }
    }
    manager.on_finish(&mut machine);
    publish_walk_profile(&cfg.telemetry, mt.walk_profile());

    let counters = machine.counters().clone();
    Ok(RunRecord {
        workload: format!("{}({}T)", program.name(), entries.len()),
        instret: counters.instret,
        cycles: counters.cycles,
        ipc: counters.ipc(),
        energy: cfg.energy.breakdown(&counters),
        table4: dos.table4_summary(counters.instret),
        do_stats: *dos.stats(),
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{FixedManager, NullManager};
    use crate::AceConfig;
    use ace_sim::SizeLevel;

    fn small_cfg(limit: u64) -> RunConfig {
        RunConfig {
            instruction_limit: Some(limit),
            ..RunConfig::default()
        }
    }

    #[test]
    fn baseline_run_produces_sane_record() {
        let p = ace_workloads::preset("compress").unwrap();
        let r = run_with_manager_impl(&p, &small_cfg(3_000_000), &mut NullManager).unwrap();
        assert!(r.instret >= 3_000_000);
        assert!(r.ipc > 0.5 && r.ipc < 4.0, "ipc {}", r.ipc);
        assert!(r.energy.total_nj() > 0.0);
        assert_eq!(r.workload, "compress");
    }

    #[test]
    fn deterministic_records() {
        let p = ace_workloads::preset("jess").unwrap();
        let a = run_with_manager_impl(&p, &small_cfg(2_000_000), &mut NullManager).unwrap();
        let b = run_with_manager_impl(&p, &small_cfg(2_000_000), &mut NullManager).unwrap();
        assert_eq!(a.instret, b.instret);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn smaller_fixed_config_uses_less_energy_on_db() {
        // db's working sets are tiny; pinning small caches must save energy
        // with modest slowdown.
        let p = ace_workloads::preset("db").unwrap();
        let base = run_with_manager_impl(&p, &small_cfg(5_000_000), &mut NullManager).unwrap();
        let mut small = FixedManager::new(AceConfig::both(
            SizeLevel::new(3).unwrap(),
            SizeLevel::new(2).unwrap(),
        ));
        let r = run_with_manager_impl(&p, &small_cfg(5_000_000), &mut small).unwrap();
        assert!(
            r.l1d_saving_vs(&base) > 0.3,
            "L1D saving {:.3}",
            r.l1d_saving_vs(&base)
        );
        assert!(
            r.l2_saving_vs(&base) > 0.3,
            "L2 saving {:.3}",
            r.l2_saving_vs(&base)
        );
        assert!(
            r.slowdown_vs(&base) < 0.10,
            "slowdown {:.3}",
            r.slowdown_vs(&base)
        );
    }

    #[test]
    fn slowdown_sign_convention() {
        let p = ace_workloads::preset("db").unwrap();
        let base = run_with_manager_impl(&p, &small_cfg(1_000_000), &mut NullManager).unwrap();
        assert_eq!(base.slowdown_vs(&base), 0.0);
    }
}
