//! Configurable-unit settings and configuration lists.
//!
//! An [`AceConfig`] is a (possibly partial) assignment of size levels to
//! the ACE's configurable units. *CU decoupling* (Section 3.2.1) shows up
//! here as partial configurations: an L1D hotspot's configuration list
//! only touches the L1D cache (4 entries), an L2 hotspot's only the L2 —
//! versus the 16-entry combinatorial list a coupled tuner must walk.
//!
//! Configurations are keyed by the open [`CuId`] index rather than named
//! fields, so a machine that registers extra units (e.g. the DTLB) gets
//! configuration lists, domination checks, and traced requests without
//! any changes here.

use ace_sim::{CuId, Machine, ReconfigOutcome, SizeLevel, MAX_CUS};
use ace_telemetry::{Event, ReconfigCause, Telemetry};
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// Bucket bounds (cycles) for the reconfiguration-latency histogram: the
/// flush penalty ranges from zero (clean upsize) to a full dirty-cache
/// writeback.
const RECONFIG_LATENCY_BOUNDS: &[f64] = &[0.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];

/// The order in which a configuration's units are applied to the
/// hardware: the paper's two cache units first (L1D before L2, so a
/// shrinking L1D's dirty writeback lands in a still-full-size L2), then
/// the instruction window, then any further registered units in index
/// order.
const APPLY_ORDER: [CuId; 3] = [CuId::L1d, CuId::L2, CuId::Window];

/// Human-facing unit order ([`fmt::Display`]): window first, then the
/// caches, then any further units.
const DISPLAY_ORDER: [CuId; 3] = [CuId::Window, CuId::L1d, CuId::L2];

/// Iterates `head` followed by every other CU in index order.
fn cu_order(head: [CuId; 3]) -> impl Iterator<Item = CuId> {
    head.into_iter()
        .chain(CuId::ALL.into_iter().filter(move |c| !head.contains(c)))
}

/// A (partial) assignment of size levels to the configurable units.
///
/// An untouched unit means "leave that unit alone" — the essence of CU
/// decoupling. Stored as a compact per-CU level array plus a
/// touched-bitmask (untouched slots are kept at zero so the derived
/// `Eq`/`Hash` see one canonical form per assignment).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct AceConfig {
    levels: [u8; MAX_CUS],
    touched: u8,
}

impl AceConfig {
    /// The empty configuration: touches nothing.
    pub fn empty() -> AceConfig {
        AceConfig::default()
    }

    /// The requested level for `cu`, if this configuration touches it.
    pub fn get(&self, cu: CuId) -> Option<SizeLevel> {
        if self.touched & (1 << cu.index()) != 0 {
            SizeLevel::new(self.levels[cu.index()])
        } else {
            None
        }
    }

    /// Sets or clears the requested level for `cu`.
    pub fn set(&mut self, cu: CuId, level: Option<SizeLevel>) {
        match level {
            Some(l) => {
                self.levels[cu.index()] = l.index() as u8;
                self.touched |= 1 << cu.index();
            }
            None => {
                self.levels[cu.index()] = 0;
                self.touched &= !(1 << cu.index());
            }
        }
    }

    /// Builder form of [`AceConfig::set`].
    pub fn with(mut self, cu: CuId, level: SizeLevel) -> AceConfig {
        self.set(cu, Some(level));
        self
    }

    /// `true` when this configuration requests a level for `cu`.
    pub fn touches(&self, cu: CuId) -> bool {
        self.touched & (1 << cu.index()) != 0
    }

    /// `true` when this configuration touches no unit at all.
    pub fn is_empty(&self) -> bool {
        self.touched == 0
    }

    /// The touched units and their requested levels, in index order.
    pub fn touched_units(&self) -> impl Iterator<Item = (CuId, SizeLevel)> + '_ {
        CuId::ALL
            .into_iter()
            .filter_map(move |cu| self.get(cu).map(|l| (cu, l)))
    }

    /// This configuration restricted to `cu` alone (used to clip a
    /// multi-unit prediction to a hotspot's CU class). Empty when the
    /// original does not touch `cu`.
    pub fn restricted_to(&self, cu: CuId) -> AceConfig {
        let mut out = AceConfig::default();
        out.set(cu, self.get(cu));
        out
    }

    /// A configuration touching only `cu`.
    pub fn single(cu: CuId, level: SizeLevel) -> AceConfig {
        AceConfig::default().with(cu, level)
    }

    /// A configuration touching only the L1D cache.
    pub fn l1d_only(level: SizeLevel) -> AceConfig {
        AceConfig::single(CuId::L1d, level)
    }

    /// A configuration touching only the L2 cache.
    pub fn l2_only(level: SizeLevel) -> AceConfig {
        AceConfig::single(CuId::L2, level)
    }

    /// A configuration touching only the instruction window.
    pub fn window_only(level: SizeLevel) -> AceConfig {
        AceConfig::single(CuId::Window, level)
    }

    /// A full configuration of the paper's two cache units.
    pub fn both(l1d: SizeLevel, l2: SizeLevel) -> AceConfig {
        AceConfig::default().with(CuId::L1d, l1d).with(CuId::L2, l2)
    }

    /// The baseline (largest) full configuration.
    pub fn baseline() -> AceConfig {
        AceConfig::both(SizeLevel::LARGEST, SizeLevel::LARGEST)
    }

    /// `true` when `self` selects a cache at most as large as `other` in
    /// every unit both configurations touch — i.e. if `other` already
    /// degrades performance past the threshold, `self` cannot do better
    /// (capacity monotonicity).
    pub fn dominated_by(&self, other: &AceConfig) -> bool {
        CuId::ALL.into_iter().all(|cu| {
            match (self.get(cu), other.get(cu)) {
                // Larger index = smaller cache.
                (Some(x), Some(y)) => x.index() >= y.index(),
                (None, None) => true,
                // One touches the unit, the other leaves it alone: no
                // ordering can be concluded for that unit.
                _ => false,
            }
        })
    }

    /// Requests this configuration from the hardware; returns `true` when
    /// every touched unit is now at the requested level (either newly
    /// applied or already there), `false` if any request was rejected by
    /// the reconfiguration-interval guard.
    ///
    /// `applied` is incremented for each unit whose control register
    /// actually changed (the "reconfigurations" column of Table 6).
    pub fn request(&self, machine: &mut Machine, applied: &mut u64) -> bool {
        self.request_traced(machine, applied, &Telemetry::off(), ReconfigCause::Apply)
    }

    /// Like [`AceConfig::request`], but emits one [`Event::Reconfigured`]
    /// per unit whose control register actually changed, tagged with
    /// `cause`, and records the resize's cycle cost and writeback volume
    /// in the `reconfig_latency_cycles` / `reconfig_dirty_lines`
    /// histograms.
    pub fn request_traced(
        &self,
        machine: &mut Machine,
        applied: &mut u64,
        tel: &Telemetry,
        cause: ReconfigCause,
    ) -> bool {
        let mut ok = true;
        for cu in cu_order(APPLY_ORDER) {
            let Some(level) = self.get(cu) else { continue };
            let from = machine.level(cu).index() as u8;
            let cycles_before = machine.cycles();
            match machine.request_resize(cu, level) {
                ReconfigOutcome::Applied(flush) => {
                    *applied += 1;
                    tel.emit(|| Event::Reconfigured {
                        cu,
                        from,
                        to: level.index() as u8,
                        cause,
                        cycle: machine.cycles(),
                    });
                    if let Some(metrics) = tel.metrics() {
                        metrics
                            .histogram("reconfig_latency_cycles", RECONFIG_LATENCY_BOUNDS)
                            .record((machine.cycles() - cycles_before) as f64);
                        metrics
                            .histogram("reconfig_dirty_lines", RECONFIG_LATENCY_BOUNDS)
                            .record(flush.dirty_lines as f64);
                    }
                }
                ReconfigOutcome::Unchanged => {}
                ReconfigOutcome::TooSoon { .. } => ok = false,
            }
        }
        ok
    }

    /// `true` when the machine is currently at this configuration (for the
    /// units this configuration touches).
    pub fn in_effect(&self, machine: &Machine) -> bool {
        self.touched_units()
            .all(|(cu, level)| machine.level(cu) == level)
    }
}

impl fmt::Display for AceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for cu in cu_order(DISPLAY_ORDER) {
            if let Some(level) = self.get(cu) {
                parts.push(format!("{cu}={level}"));
            }
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join(","))
        }
    }
}

impl fmt::Debug for AceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AceConfig({self})")
    }
}

impl Serialize for AceConfig {
    // Legacy field order (l1d, l2, window) first, then any newer units;
    // untouched units are omitted (the legacy encoding wrote them as
    // `null`, which deserialization still accepts).
    fn to_value(&self) -> Value {
        let mut pairs = Vec::new();
        for cu in cu_order([CuId::L1d, CuId::L2, CuId::Window]) {
            if let Some(level) = self.get(cu) {
                pairs.push((cu.name().to_string(), Value::U64(level.index() as u64)));
            }
        }
        Value::Object(pairs)
    }
}

impl Deserialize for AceConfig {
    // Accepts both the current sparse encoding and the pre-registry
    // `{"l1d": 1, "l2": null, "window": null}` shape: a `null` or missing
    // unit is untouched, a number is that unit's level index.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected an AceConfig object"))?;
        let mut cfg = AceConfig::default();
        for (key, val) in obj {
            if matches!(val, Value::Null) {
                continue;
            }
            let cu = CuId::from_name(key)
                .ok_or_else(|| Error::custom(format!("unknown configurable unit `{key}`")))?;
            let idx = val
                .as_u64()
                .ok_or_else(|| Error::custom(format!("expected a size level for `{key}`")))?;
            let level = u8::try_from(idx)
                .ok()
                .and_then(SizeLevel::new)
                .ok_or_else(|| Error::custom(format!("size level {idx} out of range")))?;
            cfg.set(cu, Some(level));
        }
        Ok(cfg)
    }
}

/// The decoupled configuration list for one CU: its four sizes, largest
/// first (so the first trial doubles as the performance baseline).
pub fn single_cu_list(cu: CuId) -> Vec<AceConfig> {
    SizeLevel::all().map(|l| AceConfig::single(cu, l)).collect()
}

/// The coupled combinatorial list over the given CUs: every level
/// combination, walked in order of decreasing total capacity (the
/// full-size baseline first, ties broken by the first CU's level), so the
/// tuner explores every unit's shrink direction instead of exhausting one
/// unit before touching the others.
pub fn combined_list_for(cus: &[CuId]) -> Vec<AceConfig> {
    let mut out = vec![AceConfig::default()];
    for &cu in cus {
        out = out
            .into_iter()
            .flat_map(|cfg| SizeLevel::all().map(move |l| cfg.with(cu, l)))
            .collect();
    }
    out.sort_by_key(|c| {
        let total: usize = cus
            .iter()
            .filter_map(|&cu| c.get(cu))
            .map(|l| l.index())
            .sum();
        let first = cus
            .first()
            .and_then(|&cu| c.get(cu))
            .map_or(0, |l| l.index());
        (total, first)
    });
    out
}

/// The paper's coupled combinatorial list over both cache units: 16
/// configurations (the ablation of Section 3.2's decoupling claim).
pub fn combined_list() -> Vec<AceConfig> {
    combined_list_for(&[CuId::L1d, CuId::L2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::{MachineConfig, NUM_SIZE_LEVELS};

    #[test]
    fn list_shapes() {
        assert_eq!(single_cu_list(CuId::L1d).len(), 4);
        assert_eq!(single_cu_list(CuId::L2).len(), 4);
        assert_eq!(combined_list().len(), 16);
        assert_eq!(combined_list()[0], AceConfig::baseline());
        assert_eq!(
            single_cu_list(CuId::L1d)[0],
            AceConfig::l1d_only(SizeLevel::LARGEST)
        );
    }

    #[test]
    fn combined_list_generalizes_to_any_cu_set() {
        let three = combined_list_for(&[CuId::L1d, CuId::L2, CuId::Window]);
        assert_eq!(three.len(), NUM_SIZE_LEVELS.pow(3));
        assert_eq!(
            three[0],
            AceConfig::baseline().with(CuId::Window, SizeLevel::LARGEST)
        );
        let dtlb = combined_list_for(&[CuId::Dtlb]);
        assert_eq!(dtlb, single_cu_list(CuId::Dtlb));
    }

    #[test]
    fn partial_config_leaves_other_unit_alone() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        let cfg = AceConfig::l1d_only(SizeLevel::new(2).unwrap());
        assert!(cfg.request(&mut m, &mut applied));
        assert_eq!(applied, 1);
        assert_eq!(m.level(CuId::L1d), SizeLevel::new(2).unwrap());
        assert_eq!(m.level(CuId::L2), SizeLevel::LARGEST);
        assert!(cfg.in_effect(&m));
    }

    #[test]
    fn unchanged_request_counts_nothing() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        assert!(AceConfig::baseline().request(&mut m, &mut applied));
        assert_eq!(applied, 0, "already at baseline");
    }

    #[test]
    fn guard_rejection_reported() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        assert!(AceConfig::l2_only(SizeLevel::new(1).unwrap()).request(&mut m, &mut applied));
        // Immediately request another L2 level: guard rejects.
        assert!(!AceConfig::l2_only(SizeLevel::new(2).unwrap()).request(&mut m, &mut applied));
        assert_eq!(applied, 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AceConfig::baseline().to_string(), "L1D=L0,L2=L0");
        assert_eq!(
            AceConfig::l1d_only(SizeLevel::new(3).unwrap()).to_string(),
            "L1D=L3"
        );
        assert_eq!(
            AceConfig::window_only(SizeLevel::new(1).unwrap()).to_string(),
            "WIN=L1"
        );
        assert_eq!(AceConfig::default().to_string(), "-");
        assert_eq!(
            AceConfig::single(CuId::Dtlb, SizeLevel::new(2).unwrap()).to_string(),
            "DTLB=L2"
        );
    }

    #[test]
    fn window_list_touches_only_window() {
        let list = single_cu_list(CuId::Window);
        assert_eq!(list.len(), 4);
        for cfg in &list {
            assert!(cfg.touches(CuId::Window));
            assert!(!cfg.touches(CuId::L1d) && !cfg.touches(CuId::L2));
        }
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        assert!(list[2].request(&mut m, &mut applied));
        assert_eq!(applied, 1);
        assert_eq!(m.level(CuId::Window), SizeLevel::new(2).unwrap());
        assert_eq!(m.level(CuId::L1d), SizeLevel::LARGEST);
    }

    #[test]
    fn window_domination() {
        let a = AceConfig::window_only(SizeLevel::new(3).unwrap());
        let b = AceConfig::window_only(SizeLevel::new(1).unwrap());
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        // Mixed-unit configs are incomparable.
        assert!(!a.dominated_by(&AceConfig::l1d_only(SizeLevel::LARGEST)));
    }

    #[test]
    fn set_clear_keeps_canonical_form() {
        let mut a = AceConfig::l1d_only(SizeLevel::new(3).unwrap());
        a.set(CuId::L1d, None);
        assert_eq!(a, AceConfig::default());
        assert!(a.is_empty());
        assert_eq!(a.get(CuId::L1d), None);
    }

    #[test]
    fn legacy_json_shape_still_deserializes() {
        let legacy: Value = serde_json::from_str(r#"{"l1d":1,"l2":null,"window":null}"#).unwrap();
        let cfg = AceConfig::from_value(&legacy).unwrap();
        assert_eq!(cfg, AceConfig::l1d_only(SizeLevel::new(1).unwrap()));

        let full: Value = serde_json::from_str(r#"{"l1d":0,"l2":3,"window":2}"#).unwrap();
        let cfg = AceConfig::from_value(&full).unwrap();
        assert_eq!(cfg.get(CuId::L1d), SizeLevel::new(0));
        assert_eq!(cfg.get(CuId::L2), SizeLevel::new(3));
        assert_eq!(cfg.get(CuId::Window), SizeLevel::new(2));

        assert!(AceConfig::from_value(&serde_json::from_str(r#"{"l1d":9}"#).unwrap()).is_err());
        assert!(AceConfig::from_value(&serde_json::from_str(r#"{"bogus":1}"#).unwrap()).is_err());
    }

    #[test]
    fn serde_round_trip_is_sparse() {
        let cfg = AceConfig::l1d_only(SizeLevel::new(2).unwrap());
        let v = cfg.to_value();
        assert_eq!(v.as_object().unwrap().len(), 1, "untouched units omitted");
        assert_eq!(AceConfig::from_value(&v).unwrap(), cfg);
        let full = AceConfig::baseline().with(CuId::Dtlb, SizeLevel::new(1).unwrap());
        assert_eq!(AceConfig::from_value(&full.to_value()).unwrap(), full);
    }
}
