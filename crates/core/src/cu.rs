//! Configurable-unit settings and configuration lists.
//!
//! An [`AceConfig`] is a (possibly partial) assignment of size levels to
//! the ACE's configurable units. *CU decoupling* (Section 3.2.1) shows up
//! here as partial configurations: an L1D hotspot's configuration list
//! only touches the L1D cache (4 entries), an L2 hotspot's only the L2 —
//! versus the 16-entry combinatorial list a coupled tuner must walk.

use ace_sim::{CuKind, Machine, ReconfigOutcome, SizeLevel, NUM_SIZE_LEVELS};
use ace_telemetry::{Cu, Event, ReconfigCause, Telemetry};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bucket bounds (cycles) for the reconfiguration-latency histogram: the
/// flush penalty ranges from zero (clean upsize) to a full dirty-cache
/// writeback.
const RECONFIG_LATENCY_BOUNDS: &[f64] = &[0.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];

/// A (partial) assignment of size levels to the configurable units.
///
/// `None` means "leave that unit alone" — the essence of CU decoupling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AceConfig {
    /// Requested L1 data cache level, if this configuration touches it.
    pub l1d: Option<SizeLevel>,
    /// Requested L2 cache level, if this configuration touches it.
    pub l2: Option<SizeLevel>,
    /// Requested instruction-window level, if this configuration touches
    /// it (the three-CU extension; `None` everywhere in the paper's
    /// two-CU evaluation).
    #[serde(default)]
    pub window: Option<SizeLevel>,
}

impl AceConfig {
    /// `true` when `self` selects a cache at most as large as `other` in
    /// every unit both configurations touch — i.e. if `other` already
    /// degrades performance past the threshold, `self` cannot do better
    /// (capacity monotonicity).
    pub fn dominated_by(&self, other: &AceConfig) -> bool {
        fn le(a: Option<SizeLevel>, b: Option<SizeLevel>) -> bool {
            match (a, b) {
                // Larger index = smaller cache.
                (Some(x), Some(y)) => x.index() >= y.index(),
                (None, None) => true,
                // One touches the unit, the other leaves it alone: no
                // ordering can be concluded for that unit.
                _ => false,
            }
        }
        le(self.l1d, other.l1d) && le(self.l2, other.l2) && le(self.window, other.window)
    }

    /// A configuration touching only the L1D cache.
    pub fn l1d_only(level: SizeLevel) -> AceConfig {
        AceConfig {
            l1d: Some(level),
            ..AceConfig::default()
        }
    }

    /// A configuration touching only the L2 cache.
    pub fn l2_only(level: SizeLevel) -> AceConfig {
        AceConfig {
            l2: Some(level),
            ..AceConfig::default()
        }
    }

    /// A configuration touching only the instruction window.
    pub fn window_only(level: SizeLevel) -> AceConfig {
        AceConfig {
            window: Some(level),
            ..AceConfig::default()
        }
    }

    /// A full configuration of the paper's two cache units.
    pub fn both(l1d: SizeLevel, l2: SizeLevel) -> AceConfig {
        AceConfig {
            l1d: Some(l1d),
            l2: Some(l2),
            window: None,
        }
    }

    /// The baseline (largest) full configuration.
    pub fn baseline() -> AceConfig {
        AceConfig::both(SizeLevel::LARGEST, SizeLevel::LARGEST)
    }

    /// Requests this configuration from the hardware; returns `true` when
    /// every touched unit is now at the requested level (either newly
    /// applied or already there), `false` if any request was rejected by
    /// the reconfiguration-interval guard.
    ///
    /// `applied` is incremented for each unit whose control register
    /// actually changed (the "reconfigurations" column of Table 6).
    pub fn request(&self, machine: &mut Machine, applied: &mut u64) -> bool {
        self.request_traced(machine, applied, &Telemetry::off(), ReconfigCause::Apply)
    }

    /// Like [`AceConfig::request`], but emits one [`Event::Reconfigured`]
    /// per unit whose control register actually changed, tagged with
    /// `cause`, and records the resize's cycle cost and writeback volume
    /// in the `reconfig_latency_cycles` / `reconfig_dirty_lines`
    /// histograms.
    pub fn request_traced(
        &self,
        machine: &mut Machine,
        applied: &mut u64,
        tel: &Telemetry,
        cause: ReconfigCause,
    ) -> bool {
        let mut ok = true;
        // Same unit order as the untraced path: L1D, L2, window.
        let units = [
            (CuKind::L1d, Cu::L1d, self.l1d),
            (CuKind::L2, Cu::L2, self.l2),
            (CuKind::Window, Cu::Window, self.window),
        ];
        for (kind, cu, level) in units {
            let Some(level) = level else { continue };
            let from = machine.level(kind).index() as u8;
            let cycles_before = machine.cycles();
            match machine.request_resize(kind, level) {
                ReconfigOutcome::Applied(flush) => {
                    *applied += 1;
                    tel.emit(|| Event::Reconfigured {
                        cu,
                        from,
                        to: level.index() as u8,
                        cause,
                        cycle: machine.cycles(),
                    });
                    if let Some(metrics) = tel.metrics() {
                        metrics
                            .histogram("reconfig_latency_cycles", RECONFIG_LATENCY_BOUNDS)
                            .record((machine.cycles() - cycles_before) as f64);
                        metrics
                            .histogram("reconfig_dirty_lines", RECONFIG_LATENCY_BOUNDS)
                            .record(flush.dirty_lines as f64);
                    }
                }
                ReconfigOutcome::Unchanged => {}
                ReconfigOutcome::TooSoon { .. } => ok = false,
            }
        }
        ok
    }

    /// `true` when the machine is currently at this configuration (for the
    /// units this configuration touches).
    pub fn in_effect(&self, machine: &Machine) -> bool {
        self.l1d.is_none_or(|l| machine.level(CuKind::L1d) == l)
            && self.l2.is_none_or(|l| machine.level(CuKind::L2) == l)
            && self
                .window
                .is_none_or(|l| machine.level(CuKind::Window) == l)
    }
}

impl fmt::Display for AceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(w) = self.window {
            parts.push(format!("WIN={w}"));
        }
        if let Some(a) = self.l1d {
            parts.push(format!("L1D={a}"));
        }
        if let Some(b) = self.l2 {
            parts.push(format!("L2={b}"));
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join(","))
        }
    }
}

/// The decoupled configuration list for one CU: its four sizes, largest
/// first (so the first trial doubles as the performance baseline).
pub fn single_cu_list(cu: CuKind) -> Vec<AceConfig> {
    SizeLevel::all()
        .map(|l| match cu {
            CuKind::Window => AceConfig::window_only(l),
            CuKind::L1d => AceConfig::l1d_only(l),
            CuKind::L2 => AceConfig::l2_only(l),
        })
        .collect()
}

/// The coupled combinatorial list over both CUs: 16 configurations,
/// walked in order of decreasing total capacity (the full-size baseline
/// first), so the tuner explores both units' shrink directions instead of
/// exhausting one unit before touching the other.
pub fn combined_list() -> Vec<AceConfig> {
    let mut out = Vec::with_capacity(NUM_SIZE_LEVELS * NUM_SIZE_LEVELS);
    for l2 in SizeLevel::all() {
        for l1d in SizeLevel::all() {
            out.push(AceConfig::both(l1d, l2));
        }
    }
    out.sort_by_key(|c| {
        let a = c.l1d.map_or(0, |l| l.index());
        let b = c.l2.map_or(0, |l| l.index());
        (a + b, a)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::MachineConfig;

    #[test]
    fn list_shapes() {
        assert_eq!(single_cu_list(CuKind::L1d).len(), 4);
        assert_eq!(single_cu_list(CuKind::L2).len(), 4);
        assert_eq!(combined_list().len(), 16);
        assert_eq!(combined_list()[0], AceConfig::baseline());
        assert_eq!(
            single_cu_list(CuKind::L1d)[0],
            AceConfig::l1d_only(SizeLevel::LARGEST)
        );
    }

    #[test]
    fn partial_config_leaves_other_unit_alone() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        let cfg = AceConfig::l1d_only(SizeLevel::new(2).unwrap());
        assert!(cfg.request(&mut m, &mut applied));
        assert_eq!(applied, 1);
        assert_eq!(m.level(CuKind::L1d), SizeLevel::new(2).unwrap());
        assert_eq!(m.level(CuKind::L2), SizeLevel::LARGEST);
        assert!(cfg.in_effect(&m));
    }

    #[test]
    fn unchanged_request_counts_nothing() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        assert!(AceConfig::baseline().request(&mut m, &mut applied));
        assert_eq!(applied, 0, "already at baseline");
    }

    #[test]
    fn guard_rejection_reported() {
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        assert!(AceConfig::l2_only(SizeLevel::new(1).unwrap()).request(&mut m, &mut applied));
        // Immediately request another L2 level: guard rejects.
        assert!(!AceConfig::l2_only(SizeLevel::new(2).unwrap()).request(&mut m, &mut applied));
        assert_eq!(applied, 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AceConfig::baseline().to_string(), "L1D=L0,L2=L0");
        assert_eq!(
            AceConfig::l1d_only(SizeLevel::new(3).unwrap()).to_string(),
            "L1D=L3"
        );
        assert_eq!(
            AceConfig::window_only(SizeLevel::new(1).unwrap()).to_string(),
            "WIN=L1"
        );
        assert_eq!(AceConfig::default().to_string(), "-");
    }

    #[test]
    fn window_list_touches_only_window() {
        let list = single_cu_list(CuKind::Window);
        assert_eq!(list.len(), 4);
        for cfg in &list {
            assert!(cfg.window.is_some());
            assert!(cfg.l1d.is_none() && cfg.l2.is_none());
        }
        let mut m = Machine::new(MachineConfig::table2()).unwrap();
        let mut applied = 0;
        assert!(list[2].request(&mut m, &mut applied));
        assert_eq!(applied, 1);
        assert_eq!(m.level(CuKind::Window), SizeLevel::new(2).unwrap());
        assert_eq!(m.level(CuKind::L1d), SizeLevel::LARGEST);
    }

    #[test]
    fn window_domination() {
        let a = AceConfig::window_only(SizeLevel::new(3).unwrap());
        let b = AceConfig::window_only(SizeLevel::new(1).unwrap());
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        // Mixed-unit configs are incomparable.
        assert!(!a.dominated_by(&AceConfig::l1d_only(SizeLevel::LARGEST)));
    }
}
