//! The original positional scheme (Huang, Renau & Torrellas, ISCA 2003),
//! which the paper discusses in Section 3.5 as its closest ancestor.
//!
//! Unlike the DO-based framework, this scheme has no dynamic optimization
//! system behind it: there is no hot-threshold filtering, no JIT-installed
//! tuning/configuration code, and no notion of hotspot size classes. It
//! simply watches raw procedure boundaries, declares procedures whose
//! invocations exceed a fixed size "large", and tunes the full
//! combinatorial configuration list at their boundaries.
//!
//! The paper's two criticisms are directly observable here:
//!
//! * large procedures are not necessarily *frequently invoked*, so the
//!   chosen configuration is applied fewer times per tuning investment;
//! * fine-grain behavior changes *inside* a large procedure are invisible,
//!   so the kernels' diverse L1D appetites collapse into one compromise —
//!   the same weakness as the temporal schemes, without their coverage.

use crate::cu::combined_list;
use crate::manager::AceManager;
use crate::measure::Probe;
use crate::tuner::ConfigTuner;
use ace_energy::EnergyModel;
use ace_phase::{PositionalConfig, PositionalDetector};
use ace_sim::{Machine, OnlineStats};
use ace_telemetry::{Event, ReconfigCause, Scope, Telemetry};
use ace_workloads::MethodId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the positional manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositionalManagerConfig {
    /// Large-procedure detection parameters.
    pub detector: PositionalConfig,
    /// Maximum IPC degradation versus the full-size reference.
    pub perf_threshold: f64,
}

impl Default for PositionalManagerConfig {
    fn default() -> Self {
        PositionalManagerConfig {
            detector: PositionalConfig::default(),
            perf_threshold: 0.02,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    Trial,
    Idle,
}

#[derive(Debug)]
struct ProcState {
    tuner: ConfigTuner,
    pending: Pending,
    probe: Option<Probe>,
    covered: bool,
    covered_instr: u64,
    applications: u64,
    ipc_stats: OnlineStats,
}

/// End-of-run report of the positional scheme.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PositionalReport {
    /// Procedures that qualified as adaptation points.
    pub large_procedures: u64,
    /// Adaptation points whose tuning completed.
    pub tuned: u64,
    /// Configuration trials measured.
    pub tunings: u64,
    /// Control-register changes applying a selected configuration.
    pub reconfigs: u64,
    /// Times a selected configuration was applied (including no-ops).
    pub applications: u64,
    /// Instructions executed inside adaptation points running under their
    /// selected configuration.
    pub covered_instr: u64,
    /// Mean per-procedure IPC CoV.
    pub per_proc_ipc_cov: f64,
}

/// The large-procedure positional manager.
///
/// # Examples
///
/// ```no_run
/// use ace_core::{Experiment, PositionalAceManager, PositionalManagerConfig};
/// use ace_energy::EnergyModel;
/// let program = ace_workloads::preset("jess").unwrap();
/// let mut mgr = PositionalAceManager::new(
///     &program,
///     PositionalManagerConfig::default(),
///     EnergyModel::default_180nm(),
/// );
/// let record = Experiment::program(program).run_with(&mut mgr)?;
/// println!("saved {:.1}%", 100.0 * (1.0 - record.energy.total_nj() / 1.0));
/// # Ok::<(), ace_core::ExperimentError>(())
/// ```
#[derive(Debug)]
pub struct PositionalAceManager {
    config: PositionalManagerConfig,
    model: EnergyModel,
    detector: PositionalDetector,
    states: HashMap<MethodId, ProcState>,
    reconfigs: u64,
    tunings: u64,
    tel: Telemetry,
}

impl PositionalAceManager {
    /// Creates a manager for `program`.
    pub fn new(
        program: &ace_workloads::Program,
        config: PositionalManagerConfig,
        model: EnergyModel,
    ) -> PositionalAceManager {
        PositionalAceManager {
            detector: PositionalDetector::new(program.method_count(), config.detector.clone()),
            config,
            model,
            states: HashMap::new(),
            reconfigs: 0,
            tunings: 0,
            tel: Telemetry::off(),
        }
    }

    /// Builds the end-of-run report.
    pub fn report(&self) -> PositionalReport {
        let mut r = PositionalReport {
            large_procedures: self.detector.large_count() as u64,
            tunings: self.tunings,
            reconfigs: self.reconfigs,
            ..PositionalReport::default()
        };
        let mut cov_sum = 0.0;
        let mut cov_n = 0u64;
        // MethodId order, not HashMap order: float accumulation must not
        // depend on the per-process hash seed (see HotspotDetection::report).
        let mut ordered: Vec<(&MethodId, &ProcState)> = self.states.iter().collect();
        ordered.sort_by_key(|(m, _)| m.0);
        for (_, s) in ordered {
            if s.tuner.is_done() {
                r.tuned += 1;
            }
            r.covered_instr += s.covered_instr;
            r.applications += s.applications;
            if s.ipc_stats.count() >= 2 {
                cov_sum += s.ipc_stats.cov();
                cov_n += 1;
            }
        }
        r.per_proc_ipc_cov = if cov_n > 0 {
            cov_sum / cov_n as f64
        } else {
            0.0
        };
        r
    }
}

impl AceManager for PositionalAceManager {
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.tel = telemetry;
    }

    fn on_method_enter(&mut self, method: MethodId, machine: &mut Machine) {
        if !self.detector.is_large(method) {
            return;
        }
        let threshold = self.config.perf_threshold;
        let tel = self.tel.clone();
        let is_new = !self.states.contains_key(&method);
        let state = self.states.entry(method).or_insert_with(|| ProcState {
            tuner: ConfigTuner::new(combined_list(), threshold),
            pending: Pending::Idle,
            probe: None,
            covered: false,
            covered_instr: 0,
            applications: 0,
            ipc_stats: OnlineStats::new(),
        });
        if is_new {
            let configs = state.tuner.list_len() as u32;
            tel.emit(|| Event::TuningStarted {
                scope: Scope::Procedure { method: method.0 },
                configs,
                instret: machine.instret(),
            });
        }
        state.pending = Pending::Idle;
        state.covered = false;

        if let Some(best) = state.tuner.best() {
            let mut applied = 0;
            let ok = best.request_traced(machine, &mut applied, &tel, ReconfigCause::Apply);
            state.covered = ok && best.in_effect(machine);
            state.applications += 1;
            self.reconfigs += applied;
        } else if let Some(trial) = state.tuner.next_trial() {
            let mut applied = 0;
            let ok = trial.request_traced(machine, &mut applied, &tel, ReconfigCause::Trial);
            if ok && applied == 0 {
                state.pending = Pending::Trial;
            }
        }
        if let Some(state) = self.states.get_mut(&method) {
            state.probe = Some(Probe::arm(machine, &self.model));
        }
    }

    fn on_method_exit(&mut self, method: MethodId, invocation_instr: u64, machine: &mut Machine) {
        // Feed the detector on every raw exit (that is how large procedures
        // are discovered in the first place).
        self.detector.on_exit(method, invocation_instr);

        let Some(state) = self.states.get_mut(&method) else {
            return;
        };
        let Some(probe) = state.probe.take() else {
            return;
        };
        let Some(m) = probe.finish(machine, &self.model) else {
            return;
        };
        state.ipc_stats.push(m.ipc);
        if state.covered {
            state.covered_instr += m.instr;
        }
        if state.pending == Pending::Trial && !state.tuner.is_done() {
            state.tuner.record_traced(
                m,
                &self.tel,
                Scope::Procedure { method: method.0 },
                machine.instret(),
            );
            self.tunings += 1;
        }
        state.pending = Pending::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_with_manager_impl as run_with_manager, RunConfig};
    use crate::manager::NullManager;

    fn limited(limit: u64) -> RunConfig {
        RunConfig {
            instruction_limit: Some(limit),
            ..RunConfig::default()
        }
    }

    #[test]
    fn finds_large_procedures_and_tunes() {
        let program = ace_workloads::preset("jess").unwrap();
        let mut mgr = PositionalAceManager::new(
            &program,
            PositionalManagerConfig::default(),
            EnergyModel::default_180nm(),
        );
        let _ = run_with_manager(&program, &limited(40_000_000), &mut mgr).unwrap();
        let r = mgr.report();
        // jess's two stage methods exceed the 500K cutoff.
        assert!(
            r.large_procedures >= 2,
            "large procedures {}",
            r.large_procedures
        );
        assert!(r.tunings > 0);
    }

    #[test]
    fn saves_less_than_hotspot_scheme() {
        // The paper's Section 3.5 claim: positional adaptation at large
        // procedure boundaries cannot see the kernels' diverse working
        // sets, so it captures less of the opportunity.
        let program = ace_workloads::preset("mpeg").unwrap();
        let cfg = limited(60_000_000);
        let model = EnergyModel::default_180nm();
        let base = run_with_manager(&program, &cfg, &mut NullManager).unwrap();

        let mut pos =
            PositionalAceManager::new(&program, PositionalManagerConfig::default(), model);
        let r_pos = run_with_manager(&program, &cfg, &mut pos).unwrap();

        let mut hs = crate::HotspotAceManager::new(crate::HotspotManagerConfig::default(), model);
        let r_hs = run_with_manager(&program, &cfg, &mut hs).unwrap();

        let sav_pos = 1.0 - r_pos.energy.total_nj() / base.energy.total_nj();
        let sav_hs = 1.0 - r_hs.energy.total_nj() / base.energy.total_nj();
        assert!(
            sav_hs > sav_pos,
            "hotspot ({sav_hs:.3}) must beat positional ({sav_pos:.3})"
        );
    }

    #[test]
    fn ignores_small_procedures() {
        let program = ace_workloads::preset("db").unwrap();
        let mut mgr = PositionalAceManager::new(
            &program,
            PositionalManagerConfig::default(),
            EnergyModel::default_180nm(),
        );
        let _ = run_with_manager(&program, &limited(10_000_000), &mut mgr).unwrap();
        // Kernels (~150K instructions) are far below the 500K cutoff.
        assert!(mgr.report().large_procedures <= 4);
    }
}
