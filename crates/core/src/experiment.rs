//! The typed run façade: [`Experiment`] builds and executes one measured
//! run, replacing the old free-function surface (`run_with_manager`,
//! `run_threaded`).
//!
//! An experiment names a workload (a preset or an owned [`Program`]),
//! picks a [`Scheme`], and layers run options on top of
//! [`RunConfig::default`]:
//!
//! ```
//! use ace_core::{Experiment, Scheme};
//!
//! let record = Experiment::preset("javac")
//!     .scheme(Scheme::Hotspot)
//!     .seed(7)
//!     .instruction_limit(2_000_000)
//!     .run()?;
//! assert!(record.instret >= 2_000_000);
//! # Ok::<(), ace_core::ExperimentError>(())
//! ```
//!
//! [`Experiment::run_scheme`] additionally returns the scheme manager's
//! report, and [`Experiment::run_with`] accepts any hand-built
//! [`AceManager`] for ablations that perturb a manager's configuration.

use crate::driver::{run_threaded_impl, run_with_manager_impl, RunConfig, RunRecord};
use crate::{
    AceConfig, AceManager, BbvAceManager, BbvManagerConfig, BbvReport, FixedManager,
    HotspotAceManager, HotspotManagerConfig, HotspotReport, NullManager, PositionalAceManager,
    PositionalManagerConfig, PositionalReport,
};
use ace_energy::EnergyModel;
use ace_runtime::DoConfig;
use ace_sim::{ConfigError, MachineConfig};
use ace_telemetry::Telemetry;
use ace_workloads::{MethodId, Program};
use std::fmt;

/// The management scheme an [`Experiment`] runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Scheme {
    /// Non-adaptive baseline: both caches pinned at their largest sizes.
    Baseline,
    /// The paper's DO-based hotspot scheme with CU decoupling.
    Hotspot,
    /// The temporal baseline: BBV phases + tune-all-combinations.
    Bbv,
    /// Huang et al.'s positional scheme (large-procedure boundaries).
    Positional,
    /// A fixed configuration installed at start (static-oracle points).
    Fixed(AceConfig),
}

impl Scheme {
    /// Stable lowercase name, used for job keys and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Hotspot => "hotspot",
            Scheme::Bbv => "bbv",
            Scheme::Positional => "positional",
            Scheme::Fixed(_) => "fixed",
        }
    }
}

/// The scheme manager's end-of-run report, when the scheme produces one.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SchemeReport {
    /// Baseline and fixed schemes have nothing to report.
    None,
    /// [`Scheme::Bbv`].
    Bbv(BbvReport),
    /// [`Scheme::Hotspot`].
    Hotspot(HotspotReport),
    /// [`Scheme::Positional`].
    Positional(PositionalReport),
}

impl SchemeReport {
    /// The BBV report, if this is one.
    pub fn bbv(&self) -> Option<&BbvReport> {
        match self {
            SchemeReport::Bbv(r) => Some(r),
            _ => None,
        }
    }

    /// The hotspot report, if this is one.
    pub fn hotspot(&self) -> Option<&HotspotReport> {
        match self {
            SchemeReport::Hotspot(r) => Some(r),
            _ => None,
        }
    }

    /// The positional report, if this is one.
    pub fn positional(&self) -> Option<&PositionalReport> {
        match self {
            SchemeReport::Positional(r) => Some(r),
            _ => None,
        }
    }
}

/// One completed scheme run: the measured record plus the manager report.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Which scheme ran.
    pub scheme: Scheme,
    /// The measured run.
    pub record: RunRecord,
    /// The scheme manager's report ([`SchemeReport::None`] for baseline
    /// and fixed runs).
    pub report: SchemeReport,
}

/// Errors surfaced by [`Experiment::run`] and friends.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The preset name is not one of [`ace_workloads::PRESET_NAMES`].
    UnknownWorkload(String),
    /// The machine configuration was rejected by the simulator.
    Machine(ConfigError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownWorkload(name) => write!(
                f,
                "unknown workload {name:?}; expected one of {:?}",
                ace_workloads::PRESET_NAMES
            ),
            ExperimentError::Machine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ConfigError> for ExperimentError {
    fn from(e: ConfigError) -> ExperimentError {
        ExperimentError::Machine(e)
    }
}

enum Source {
    Preset(String),
    Program(Box<Program>),
}

/// Builder for one measured run.
pub struct Experiment {
    source: Source,
    scheme: Scheme,
    cfg: RunConfig,
    model: EnergyModel,
    threading: Option<(Vec<MethodId>, u64)>,
}

impl Experiment {
    /// An experiment over the named preset workload. The name is resolved
    /// when the experiment runs; unknown names yield
    /// [`ExperimentError::UnknownWorkload`].
    pub fn preset(name: impl Into<String>) -> Experiment {
        Experiment::with_source(Source::Preset(name.into()))
    }

    /// An experiment over a custom [`Program`] (e.g. one built with
    /// `ace_workloads::ProgramBuilder`).
    pub fn program(program: Program) -> Experiment {
        Experiment::with_source(Source::Program(Box::new(program)))
    }

    fn with_source(source: Source) -> Experiment {
        let model = EnergyModel::default_180nm();
        Experiment {
            source,
            scheme: Scheme::Baseline,
            cfg: RunConfig {
                energy: model,
                ..RunConfig::default()
            },
            model,
            threading: None,
        }
    }

    /// Selects the management scheme (default [`Scheme::Baseline`]).
    pub fn scheme(mut self, scheme: Scheme) -> Experiment {
        self.scheme = scheme;
        self
    }

    /// Overrides the workload's own executor seed.
    pub fn seed(mut self, seed: u64) -> Experiment {
        self.cfg.workload_seed = Some(seed);
        self
    }

    /// Caps the run at `limit` dynamic instructions.
    pub fn instruction_limit(mut self, limit: u64) -> Experiment {
        self.cfg.instruction_limit = Some(limit);
        self
    }

    /// Attaches an observability handle (cloned; handles share sinks).
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Experiment {
        self.cfg.telemetry = telemetry.clone();
        self
    }

    /// Overrides the machine configuration (Table 2 by default).
    pub fn machine(mut self, machine: MachineConfig) -> Experiment {
        self.cfg.machine = machine;
        self
    }

    /// Overrides the DO-system configuration.
    pub fn do_config(mut self, do_config: DoConfig) -> Experiment {
        self.cfg.do_config = do_config;
        self
    }

    /// Uses `model` both to price the run record and to drive the scheme
    /// managers' tuning objectives.
    pub fn energy(mut self, model: EnergyModel) -> Experiment {
        self.cfg.energy = model;
        self.model = model;
        self
    }

    /// Replaces the whole [`RunConfig`] (options set earlier are lost;
    /// later builder calls still apply on top).
    pub fn config(mut self, cfg: RunConfig) -> Experiment {
        self.model = cfg.energy;
        self.cfg = cfg;
        self
    }

    /// Runs the program time-multiplexed over `entries` (one executor per
    /// entry method) in `quantum_instr` slices — the threading model of
    /// the dual-threaded mtrt experiment.
    pub fn threaded(mut self, entries: &[MethodId], quantum_instr: u64) -> Experiment {
        self.threading = Some((entries.to_vec(), quantum_instr));
        self
    }

    fn resolve(&self) -> Result<Program, ExperimentError> {
        match &self.source {
            Source::Preset(name) => ace_workloads::preset(name)
                .ok_or_else(|| ExperimentError::UnknownWorkload(name.clone())),
            Source::Program(p) => Ok((**p).clone()),
        }
    }

    /// Runs under the selected [`Scheme`] and returns the record alone.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::UnknownWorkload`] for an unknown preset name,
    /// [`ExperimentError::Machine`] for an invalid machine configuration.
    pub fn run(self) -> Result<RunRecord, ExperimentError> {
        Ok(self.run_scheme()?.record)
    }

    /// Runs under the selected [`Scheme`] and returns the record plus the
    /// scheme manager's report.
    ///
    /// For [`Scheme::Hotspot`] the report's `guard_rejections` is filled
    /// in from the machine counters, as the evaluation tables expect.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run_scheme(self) -> Result<SchemeRun, ExperimentError> {
        let scheme = self.scheme;
        let model = self.model;
        let program = self.resolve()?;
        let (record, report) = match scheme {
            Scheme::Baseline => (self.drive(&program, &mut NullManager)?, SchemeReport::None),
            Scheme::Fixed(config) => (
                self.drive(&program, &mut FixedManager::new(config))?,
                SchemeReport::None,
            ),
            Scheme::Hotspot => {
                let mut mgr = HotspotAceManager::new(HotspotManagerConfig::default(), model);
                let record = self.drive(&program, &mut mgr)?;
                let mut report = mgr.report();
                report.guard_rejections = record.counters.guard_rejections;
                (record, SchemeReport::Hotspot(report))
            }
            Scheme::Bbv => {
                let mut mgr = BbvAceManager::new(BbvManagerConfig::default(), model);
                let record = self.drive(&program, &mut mgr)?;
                let report = mgr.report();
                (record, SchemeReport::Bbv(report))
            }
            Scheme::Positional => {
                let mut mgr =
                    PositionalAceManager::new(&program, PositionalManagerConfig::default(), model);
                let record = self.drive(&program, &mut mgr)?;
                let report = mgr.report();
                (record, SchemeReport::Positional(report))
            }
        };
        Ok(SchemeRun {
            scheme,
            record,
            report,
        })
    }

    /// Runs under a caller-supplied manager, ignoring the selected scheme
    /// — the escape hatch for ablations that perturb manager
    /// configurations.
    ///
    /// ```
    /// use ace_core::{Experiment, FixedManager, AceConfig};
    ///
    /// let mut mgr = FixedManager::new(AceConfig::default());
    /// let record = Experiment::preset("db")
    ///     .instruction_limit(1_000_000)
    ///     .run_with(&mut mgr)?;
    /// assert!(record.ipc > 0.0);
    /// # Ok::<(), ace_core::ExperimentError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run_with<M: AceManager>(self, manager: &mut M) -> Result<RunRecord, ExperimentError> {
        let program = self.resolve()?;
        self.drive(&program, manager)
    }

    fn drive<M: AceManager>(
        &self,
        program: &Program,
        manager: &mut M,
    ) -> Result<RunRecord, ExperimentError> {
        match &self.threading {
            Some((entries, quantum)) => Ok(run_threaded_impl(
                program, entries, *quantum, &self.cfg, manager,
            )?),
            None => Ok(run_with_manager_impl(program, &self.cfg, manager)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_a_preset() {
        let r = Experiment::preset("db")
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        assert!(r.instret >= 1_000_000);
        assert_eq!(r.workload, "db");
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let err = Experiment::preset("nope").run().unwrap_err();
        assert!(matches!(err, ExperimentError::UnknownWorkload(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn scheme_runs_carry_reports() {
        let run = Experiment::preset("db")
            .scheme(Scheme::Hotspot)
            .instruction_limit(2_000_000)
            .run_scheme()
            .unwrap();
        assert!(run.report.hotspot().is_some());
        assert!(run.report.bbv().is_none());

        let run = Experiment::preset("db")
            .scheme(Scheme::Bbv)
            .instruction_limit(2_000_000)
            .run_scheme()
            .unwrap();
        assert!(run.report.bbv().is_some());
    }

    #[test]
    fn builder_matches_the_free_function_path() {
        let a = Experiment::preset("jess")
            .instruction_limit(2_000_000)
            .run()
            .unwrap();
        let program = ace_workloads::preset("jess").unwrap();
        let cfg = RunConfig {
            instruction_limit: Some(2_000_000),
            ..RunConfig::default()
        };
        let b = run_with_manager_impl(&program, &cfg, &mut NullManager).unwrap();
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn seed_changes_the_run() {
        let a = Experiment::preset("db")
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        let b = Experiment::preset("db")
            .seed(0x5EED)
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        assert_ne!(a.counters, b.counters, "a new seed perturbs the stream");
    }

    #[test]
    fn threaded_experiment_runs() {
        let (program, entries) = ace_workloads::mtrt_threaded();
        let r = Experiment::program(program)
            .threaded(&entries, 500_000)
            .instruction_limit(4_000_000)
            .run()
            .unwrap();
        assert!(r.instret >= 4_000_000);
        assert!(r.workload.contains("2T"));
    }
}
