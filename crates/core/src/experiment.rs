//! The typed run façade: [`Experiment`] builds and executes one measured
//! run, replacing the old free-function surface (`run_with_manager`,
//! `run_threaded`).
//!
//! An experiment names a workload (a preset or an owned [`Program`]),
//! picks a scheme (a registered id, a legacy [`Scheme`] value, or an
//! owned [`crate::TuningScheme`] instance via
//! [`SchemeSpec`](crate::SchemeSpec)), and layers run options on top of
//! [`RunConfig::default`]:
//!
//! ```
//! use ace_core::Experiment;
//!
//! let record = Experiment::preset("javac")
//!     .scheme("hotspot")
//!     .seed(7)
//!     .instruction_limit(2_000_000)
//!     .run()?;
//! assert!(record.instret >= 2_000_000);
//! # Ok::<(), ace_core::ExperimentError>(())
//! ```
//!
//! [`Experiment::run_scheme`] additionally returns the scheme manager's
//! unified [`SchemeReport`](crate::SchemeReport), and
//! [`Experiment::run_with`] accepts any hand-built [`AceManager`] for
//! ablations that perturb a manager's configuration.

use crate::driver::{run_threaded_impl, run_with_manager_impl, RunConfig, RunRecord};
use crate::scheme::{FixedScheme, SchemeCtx, SchemeRegistry, SchemeReport, SchemeSpec};
use crate::{AceConfig, AceManager};
use ace_energy::EnergyModel;
use ace_runtime::DoConfig;
use ace_sim::{ConfigError, MachineConfig};
use ace_telemetry::Telemetry;
use ace_workloads::{MethodId, Program};
use std::fmt;
use std::sync::Arc;

/// The built-in management schemes, kept as thin compat constructors over
/// the scheme registry (see [`crate::SchemeRegistry`]). New schemes
/// register through the registry instead of extending this enum.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Scheme {
    /// Non-adaptive baseline: both caches pinned at their largest sizes.
    Baseline,
    /// The paper's DO-based hotspot scheme with CU decoupling.
    Hotspot,
    /// The temporal baseline: BBV phases + tune-all-combinations.
    Bbv,
    /// Huang et al.'s positional scheme (large-procedure boundaries).
    Positional,
    /// Phase Distance Mapping: hotspot substrate + behavioral-distance
    /// prediction against already-tuned phases.
    Pdm,
    /// A fixed configuration installed at start (static-oracle points).
    Fixed(AceConfig),
}

impl Scheme {
    /// Stable lowercase name, used for job keys and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Hotspot => "hotspot",
            Scheme::Bbv => "bbv",
            Scheme::Positional => "positional",
            Scheme::Pdm => "pdm",
            Scheme::Fixed(_) => "fixed",
        }
    }

    /// Parses a scheme name back to its variant. `"fixed"` is not
    /// parseable (a fixed scheme is meaningless without its
    /// [`AceConfig`]).
    pub fn from_name(name: &str) -> Option<Scheme> {
        match name {
            "baseline" => Some(Scheme::Baseline),
            "hotspot" => Some(Scheme::Hotspot),
            "bbv" => Some(Scheme::Bbv),
            "positional" => Some(Scheme::Positional),
            "pdm" => Some(Scheme::Pdm),
            _ => None,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<Scheme> for SchemeSpec {
    fn from(scheme: Scheme) -> SchemeSpec {
        match scheme {
            Scheme::Fixed(config) => SchemeSpec::instance(Arc::new(FixedScheme(config))),
            named => SchemeSpec::named(named.name()),
        }
    }
}

/// One completed scheme run: the measured record plus the manager report.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// The id of the scheme that ran.
    pub scheme: String,
    /// The measured run.
    pub record: RunRecord,
    /// The scheme manager's unified report.
    pub report: SchemeReport,
}

/// Errors surfaced by [`Experiment::run`] and friends.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The preset name is not one of [`ace_workloads::PRESET_NAMES`].
    UnknownWorkload(String),
    /// The scheme id is not in the experiment's registry.
    UnknownScheme(String),
    /// The machine configuration was rejected by the simulator.
    Machine(ConfigError),
    /// The workload resolved but could not be loaded or built (unreadable
    /// or unparsable spec file, spec failing validation).
    Workload(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownWorkload(name) => write!(
                f,
                "unknown workload {name:?}; expected one of {:?}",
                ace_workloads::PRESET_NAMES
            ),
            ExperimentError::UnknownScheme(name) => {
                write!(f, "unknown scheme {name:?}; not in the scheme registry")
            }
            ExperimentError::Machine(e) => write!(f, "{e}"),
            ExperimentError::Workload(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ConfigError> for ExperimentError {
    fn from(e: ConfigError) -> ExperimentError {
        ExperimentError::Machine(e)
    }
}

enum Source {
    Named(String),
    Spec(Box<ace_workloads::WorkloadSpec>),
    Program(Box<Program>),
}

/// Builder for one measured run.
pub struct Experiment {
    source: Source,
    scheme: SchemeSpec,
    registry: SchemeRegistry,
    cfg: RunConfig,
    model: EnergyModel,
    threading: Option<(Vec<MethodId>, u64)>,
}

impl Experiment {
    /// An experiment over a named workload. The name is resolved through
    /// [`ace_workloads::WorkloadRegistry::builtin`] when the experiment
    /// runs, so it accepts a preset name (`"db"`) *or* a path to a
    /// [`WorkloadSpec`](ace_workloads::WorkloadSpec) JSON file
    /// (`"specs/gen-1f.json"`). Unknown names yield
    /// [`ExperimentError::UnknownWorkload`]; unreadable or invalid spec
    /// files yield [`ExperimentError::Workload`].
    pub fn workload(name_or_path: impl Into<String>) -> Experiment {
        Experiment::with_source(Source::Named(name_or_path.into()))
    }

    /// An experiment over the named preset workload (an alias of
    /// [`Experiment::workload`], kept for its established call sites).
    pub fn preset(name: impl Into<String>) -> Experiment {
        Experiment::workload(name)
    }

    /// An experiment over an in-memory workload spec (e.g. one from
    /// [`ace_workloads::gen`]). The spec is built when the experiment
    /// runs; build failures yield [`ExperimentError::Workload`].
    pub fn spec(spec: ace_workloads::WorkloadSpec) -> Experiment {
        Experiment::with_source(Source::Spec(Box::new(spec)))
    }

    /// An experiment over a custom [`Program`] (e.g. one built with
    /// `ace_workloads::ProgramBuilder`).
    pub fn program(program: Program) -> Experiment {
        Experiment::with_source(Source::Program(Box::new(program)))
    }

    fn with_source(source: Source) -> Experiment {
        let model = EnergyModel::default_180nm();
        Experiment {
            source,
            scheme: Scheme::Baseline.into(),
            registry: SchemeRegistry::builtin(),
            cfg: RunConfig {
                energy: model,
                ..RunConfig::default()
            },
            model,
            threading: None,
        }
    }

    /// Selects the management scheme (default baseline): a registered id
    /// (`"hotspot"`), a legacy [`Scheme`] value, or a
    /// [`SchemeSpec`](crate::SchemeSpec) carrying an owned instance.
    pub fn scheme(mut self, scheme: impl Into<SchemeSpec>) -> Experiment {
        self.scheme = scheme.into();
        self
    }

    /// Replaces the scheme registry named specs resolve against (default
    /// [`SchemeRegistry::builtin`]) — the hook for custom schemes.
    pub fn registry(mut self, registry: SchemeRegistry) -> Experiment {
        self.registry = registry;
        self
    }

    /// Overrides the workload's own executor seed.
    pub fn seed(mut self, seed: u64) -> Experiment {
        self.cfg.workload_seed = Some(seed);
        self
    }

    /// Caps the run at `limit` dynamic instructions.
    pub fn instruction_limit(mut self, limit: u64) -> Experiment {
        self.cfg.instruction_limit = Some(limit);
        self
    }

    /// Attaches an observability handle (cloned; handles share sinks).
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Experiment {
        self.cfg.telemetry = telemetry.clone();
        self
    }

    /// Overrides the machine configuration (Table 2 by default).
    pub fn machine(mut self, machine: MachineConfig) -> Experiment {
        self.cfg.machine = machine;
        self
    }

    /// Overrides the DO-system configuration.
    pub fn do_config(mut self, do_config: DoConfig) -> Experiment {
        self.cfg.do_config = do_config;
        self
    }

    /// Uses `model` both to price the run record and to drive the scheme
    /// managers' tuning objectives.
    pub fn energy(mut self, model: EnergyModel) -> Experiment {
        self.cfg.energy = model;
        self.model = model;
        self
    }

    /// Replaces the whole [`RunConfig`] (options set earlier are lost;
    /// later builder calls still apply on top).
    pub fn config(mut self, cfg: RunConfig) -> Experiment {
        self.model = cfg.energy;
        self.cfg = cfg;
        self
    }

    /// Runs the program time-multiplexed over `entries` (one executor per
    /// entry method) in `quantum_instr` slices — the threading model of
    /// the dual-threaded mtrt experiment.
    pub fn threaded(mut self, entries: &[MethodId], quantum_instr: u64) -> Experiment {
        self.threading = Some((entries.to_vec(), quantum_instr));
        self
    }

    fn resolve(&self) -> Result<Program, ExperimentError> {
        match &self.source {
            Source::Named(name) => ace_workloads::WorkloadRegistry::builtin()
                .resolve_program(name)
                .map_err(|e| match e {
                    ace_workloads::WorkloadError::Unknown { name, .. } => {
                        ExperimentError::UnknownWorkload(name)
                    }
                    other => ExperimentError::Workload(other.to_string()),
                }),
            Source::Spec(spec) => spec
                .build()
                .map_err(|e| ExperimentError::Workload(format!("building '{}': {e}", spec.name))),
            Source::Program(p) => Ok((**p).clone()),
        }
    }

    /// Runs under the selected scheme and returns the record alone.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::UnknownWorkload`] for an unknown preset name,
    /// [`ExperimentError::UnknownScheme`] for an unregistered scheme id,
    /// [`ExperimentError::Machine`] for an invalid machine configuration.
    pub fn run(self) -> Result<RunRecord, ExperimentError> {
        Ok(self.run_scheme()?.record)
    }

    /// Runs under the selected scheme and returns the record plus the
    /// manager's unified report. Every scheme's `guard_rejections` is
    /// filled from the machine counters uniformly.
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run_scheme(self) -> Result<SchemeRun, ExperimentError> {
        let program = self.resolve()?;
        let scheme = self
            .scheme
            .resolve(&self.registry)
            .ok_or_else(|| ExperimentError::UnknownScheme(self.scheme.id()))?;
        let mut manager = scheme.build(&SchemeCtx {
            program: &program,
            model: self.model,
        });
        let record = self.drive(&program, &mut *manager)?;
        let report = manager.scheme_report(&record);
        // Metrics registry only — the recorded event stream stays
        // byte-identical to a run without metrics enabled.
        if let Some(metrics) = self.cfg.telemetry.metrics() {
            report.record_metrics(metrics);
        }
        Ok(SchemeRun {
            scheme: scheme.name().to_string(),
            record,
            report,
        })
    }

    /// Runs several experiments to completion through the lane-batched
    /// driver ([`crate::run_batch`]) and returns their [`SchemeRun`]s in
    /// input order. Results are byte-identical to calling
    /// [`Experiment::run_scheme`] on each experiment separately; the
    /// batched schedule only overlaps the lanes' independent dependency
    /// chains. Threaded experiments cannot share the block-level batch
    /// and run scalar within the same call.
    ///
    /// # Errors
    ///
    /// Fails on the first experiment that fails to resolve (unknown
    /// workload or scheme, invalid machine configuration); no lane runs
    /// in that case.
    pub fn run_scheme_batch(
        experiments: Vec<Experiment>,
    ) -> Result<Vec<SchemeRun>, ExperimentError> {
        struct Prepared {
            program: Program,
            cfg: RunConfig,
            manager: Box<dyn crate::SchemeManager>,
            scheme_name: String,
            threading: Option<(Vec<MethodId>, u64)>,
        }
        let mut prepared = Vec::with_capacity(experiments.len());
        for e in experiments {
            let program = e.resolve()?;
            let scheme = e
                .scheme
                .resolve(&e.registry)
                .ok_or_else(|| ExperimentError::UnknownScheme(e.scheme.id()))?;
            let manager = scheme.build(&SchemeCtx {
                program: &program,
                model: e.model,
            });
            prepared.push(Prepared {
                program,
                cfg: e.cfg,
                manager,
                scheme_name: scheme.name().to_string(),
                threading: e.threading,
            });
        }

        // Threaded lanes cannot join the block batch: run them scalar.
        let mut records: Vec<Option<RunRecord>> = (0..prepared.len()).map(|_| None).collect();
        for (i, p) in prepared.iter_mut().enumerate() {
            if let Some((entries, quantum)) = &p.threading {
                records[i] = Some(run_threaded_impl(
                    &p.program,
                    entries,
                    *quantum,
                    &p.cfg,
                    &mut *p.manager,
                )?);
            }
        }
        let lanes: Vec<crate::BatchLane<'_>> = prepared
            .iter_mut()
            .filter(|p| p.threading.is_none())
            .map(|p| crate::BatchLane {
                program: &p.program,
                cfg: p.cfg.clone(),
                manager: &mut *p.manager,
            })
            .collect();
        let mut batched = crate::run_batch(lanes)?.into_iter();
        for (i, p) in prepared.iter().enumerate() {
            if p.threading.is_none() {
                records[i] = Some(batched.next().expect("one record per lane"));
            }
        }

        Ok(prepared
            .into_iter()
            .zip(records)
            .map(|(p, record)| {
                let record = record.expect("every lane produced a record");
                let report = p.manager.scheme_report(&record);
                if let Some(metrics) = p.cfg.telemetry.metrics() {
                    report.record_metrics(metrics);
                }
                SchemeRun {
                    scheme: p.scheme_name,
                    record,
                    report,
                }
            })
            .collect())
    }

    /// Runs under a caller-supplied manager, ignoring the selected scheme
    /// — the escape hatch for ablations that perturb manager
    /// configurations.
    ///
    /// ```
    /// use ace_core::{Experiment, FixedManager, AceConfig};
    ///
    /// let mut mgr = FixedManager::new(AceConfig::default());
    /// let record = Experiment::preset("db")
    ///     .instruction_limit(1_000_000)
    ///     .run_with(&mut mgr)?;
    /// assert!(record.ipc > 0.0);
    /// # Ok::<(), ace_core::ExperimentError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`Experiment::run`].
    pub fn run_with<M: AceManager + ?Sized>(
        self,
        manager: &mut M,
    ) -> Result<RunRecord, ExperimentError> {
        let program = self.resolve()?;
        self.drive(&program, manager)
    }

    fn drive<M: AceManager + ?Sized>(
        &self,
        program: &Program,
        manager: &mut M,
    ) -> Result<RunRecord, ExperimentError> {
        match &self.threading {
            Some((entries, quantum)) => Ok(run_threaded_impl(
                program, entries, *quantum, &self.cfg, manager,
            )?),
            None => Ok(run_with_manager_impl(program, &self.cfg, manager)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeExt;
    use crate::NullManager;

    #[test]
    fn builder_runs_a_preset() {
        let r = Experiment::preset("db")
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        assert!(r.instret >= 1_000_000);
        assert_eq!(r.workload, "db");
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let err = Experiment::preset("nope").run().unwrap_err();
        assert!(matches!(err, ExperimentError::UnknownWorkload(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn spec_source_matches_the_named_preset() {
        let spec = ace_workloads::preset_spec("db").unwrap();
        let a = Experiment::spec(spec)
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        let b = Experiment::preset("db")
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.energy.total_nj(), b.energy.total_nj());
    }

    #[test]
    fn workload_resolves_spec_files_by_path() {
        let mut spec = ace_workloads::preset_spec("check").unwrap();
        spec.name = "from-file".into();
        let dir = std::env::temp_dir().join("ace-experiment-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("from-file.json");
        std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
        let r = Experiment::workload(path.to_str().unwrap())
            .instruction_limit(500_000)
            .run()
            .unwrap();
        assert_eq!(r.workload, "from-file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_spec_is_a_workload_error() {
        let mut spec = ace_workloads::preset_spec("check").unwrap();
        spec.stages[0].children.leaf_instr = (9, 1);
        let err = Experiment::spec(spec).run().unwrap_err();
        assert!(matches!(err, ExperimentError::Workload(_)));
        assert!(err.to_string().contains("leaf_instr"), "{err}");
    }

    #[test]
    fn unknown_scheme_is_an_error() {
        let err = Experiment::preset("db")
            .scheme("warp-drive")
            .instruction_limit(1_000_000)
            .run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::UnknownScheme(_)));
        assert!(err.to_string().contains("warp-drive"));
    }

    #[test]
    fn scheme_runs_carry_reports() {
        let run = Experiment::preset("db")
            .scheme(Scheme::Hotspot)
            .instruction_limit(2_000_000)
            .run_scheme()
            .unwrap();
        assert_eq!(run.scheme, "hotspot");
        assert_eq!(run.report.scheme, "hotspot");
        assert!(matches!(run.report.ext, SchemeExt::Hotspot(_)));

        let run = Experiment::preset("db")
            .scheme("bbv")
            .instruction_limit(2_000_000)
            .run_scheme()
            .unwrap();
        assert!(matches!(run.report.ext, SchemeExt::Bbv(_)));
    }

    #[test]
    fn guard_rejections_are_uniform_across_schemes() {
        // The unified report fills guard_rejections from the machine
        // counters for *every* scheme; before the redesign only the
        // hotspot arm did, so BBV reported 0 with a nonzero counter.
        for scheme in [Scheme::Baseline, Scheme::Hotspot, Scheme::Bbv, Scheme::Pdm] {
            let run = Experiment::preset("javac")
                .scheme(scheme)
                .instruction_limit(4_000_000)
                .run_scheme()
                .unwrap();
            assert_eq!(
                run.report.guard_rejections, run.record.counters.guard_rejections,
                "{scheme} must report the machine's guard-rejection count"
            );
        }
    }

    #[test]
    fn builder_matches_the_free_function_path() {
        let a = Experiment::preset("jess")
            .instruction_limit(2_000_000)
            .run()
            .unwrap();
        let program = ace_workloads::preset("jess").unwrap();
        let cfg = RunConfig {
            instruction_limit: Some(2_000_000),
            ..RunConfig::default()
        };
        let b = run_with_manager_impl(&program, &cfg, &mut NullManager).unwrap();
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn seed_changes_the_run() {
        let a = Experiment::preset("db")
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        let b = Experiment::preset("db")
            .seed(0x5EED)
            .instruction_limit(1_000_000)
            .run()
            .unwrap();
        assert_ne!(a.counters, b.counters, "a new seed perturbs the stream");
    }

    #[test]
    fn threaded_experiment_runs() {
        let (program, entries) = ace_workloads::mtrt_threaded();
        let r = Experiment::program(program)
            .threaded(&entries, 500_000)
            .instruction_limit(4_000_000)
            .run()
            .unwrap();
        assert!(r.instret >= 4_000_000);
        assert!(r.workload.contains("2T"));
    }
}
