//! The BBV-based baseline scheme (Section 4.1 / 5.2): Basic Block Vector
//! phase detection at 1 M-instruction sampling intervals combined with the
//! Dhodapkar–Smith-style tuning algorithm over all 16 combinatorial
//! configurations.
//!
//! As in the paper's implementation, the baseline is given every benefit
//! available short of next-phase prediction: unlimited uncompressed
//! signatures, per-phase storage of tuning results, and tuning that
//! *resumes* from the last tested configuration when a phase recurs.
//! Adaptation only happens on *stable* intervals (an interval whose phase
//! matches its predecessor's); unstable intervals reset the hardware to
//! the full-size configuration, mirroring the safe behavior of the
//! working-set scheme the tuning algorithm comes from.

use crate::cu::combined_list;
use crate::manager::AceManager;
use crate::measure::Probe;
use crate::tuner::ConfigTuner;
use ace_energy::EnergyModel;
use ace_phase::{BbvConfig, BbvDetector, PhaseId, StabilityStats};
use ace_sim::{Block, Machine, OnlineStats};
use ace_telemetry::{Event, ReconfigCause, Scope, Telemetry};
use serde::{Deserialize, Serialize};

/// Configuration of the BBV manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BbvManagerConfig {
    /// Detector parameters. The default interval is 1 M + 200 instructions:
    /// sampling boundaries land on block boundaries, so a bare 1 M interval
    /// would make back-to-back L2 requests arrive marginally inside the
    /// hardware guard window and be spuriously rejected; the small slack
    /// restores the paper's exact-alignment behavior.
    pub bbv: BbvConfig,
    /// Maximum IPC degradation versus the full-size reference (2 %).
    pub perf_threshold: f64,
    /// Enable the RLE-Markov next-phase predictor (\\[20\\]/\\[24\\] in the
    /// paper). The paper's baseline runs *without* it; the ablation bench
    /// quantifies what it would have bought.
    pub use_predictor: bool,
}

impl Default for BbvManagerConfig {
    fn default() -> Self {
        BbvManagerConfig {
            bbv: BbvConfig {
                interval_instr: 1_000_200,
                ..BbvConfig::default()
            },
            perf_threshold: 0.02,
            use_predictor: false,
        }
    }
}

/// What the interval now running was set up to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// No adaptation this interval (unstable phase or guard rejection).
    Idle,
    /// Testing one configuration for `phase`.
    Trial(PhaseId),
    /// Running `phase`'s selected configuration.
    Apply(PhaseId),
}

/// End-of-run report of the BBV scheme (Tables 5 and 6, Figure 1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BbvReport {
    /// Distinct phases (signatures) detected.
    pub phases: u64,
    /// Phases whose 16-configuration tuning completed.
    pub tuned_phases: u64,
    /// Sampling intervals executed.
    pub intervals: u64,
    /// Intervals that ran under a phase's selected configuration.
    pub intervals_in_tuned_phases: u64,
    /// Configuration trials measured (Table 6 "tunings").
    pub tunings: u64,
    /// Control-register changes applying a selected configuration
    /// (Table 6 "reconfigs").
    pub reconfigs: u64,
    /// Instructions executed in intervals under a selected configuration
    /// (Table 6 "coverage" numerator).
    pub covered_instr: u64,
    /// Mean over phases of each phase's own IPC CoV.
    pub per_phase_ipc_cov: f64,
    /// CoV of per-phase mean IPCs.
    pub inter_phase_ipc_cov: f64,
    /// Trials whose interval turned out to belong to a different phase
    /// (measurement discarded).
    pub misattributed_trials: u64,
    /// Next-phase predictions issued (0 unless the predictor is enabled).
    pub predictions: u64,
    /// Fraction of issued predictions that were correct.
    pub prediction_accuracy: f64,
    /// Figure 1 stable/transitional distribution.
    pub stability: StabilityStats,
}

impl BbvReport {
    /// Fraction of intervals in tuned phases (Table 5).
    pub fn tuned_interval_fraction(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.intervals_in_tuned_phases as f64 / self.intervals as f64
        }
    }
}

/// The BBV + tune-all-combinations manager.
#[derive(Debug)]
pub struct BbvAceManager {
    config: BbvManagerConfig,
    model: EnergyModel,
    detector: BbvDetector,
    predictor: ace_phase::PhasePredictor,
    tuners: Vec<ConfigTuner>,
    /// Unmeasured stable intervals left per phase before trials start, so
    /// the performance reference is not taken on a cold first encounter.
    warmups: Vec<u8>,
    phase_ipc: Vec<OnlineStats>,
    probe: Option<Probe>,
    next_boundary: u64,
    plan: Plan,
    report: BbvReport,
    tel: Telemetry,
}

impl BbvAceManager {
    /// Creates a manager with the given policy and energy model.
    pub fn new(config: BbvManagerConfig, model: EnergyModel) -> BbvAceManager {
        BbvAceManager {
            detector: BbvDetector::new(config.bbv.clone()),
            predictor: ace_phase::PhasePredictor::new(0.6),
            config,
            model,
            tuners: Vec::new(),
            warmups: Vec::new(),
            phase_ipc: Vec::new(),
            probe: None,
            next_boundary: 0,
            plan: Plan::Idle,
            report: BbvReport::default(),
            tel: Telemetry::off(),
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &BbvManagerConfig {
        &self.config
    }

    fn tuner_mut(&mut self, phase: PhaseId, instret: u64) -> &mut ConfigTuner {
        let idx = phase.0 as usize;
        let created = self.tuners.len() <= idx;
        while self.tuners.len() <= idx {
            self.tuners.push(ConfigTuner::new(
                combined_list(),
                self.config.perf_threshold,
            ));
            self.warmups.push(1);
            self.phase_ipc.push(OnlineStats::new());
        }
        if created {
            let configs = self.tuners[idx].list_len() as u32;
            self.tel.emit(|| Event::TuningStarted {
                scope: Scope::Phase { phase: phase.0 },
                configs,
                instret,
            });
        }
        &mut self.tuners[idx]
    }

    fn end_interval(&mut self, machine: &mut Machine) {
        // 1. Measure the interval that just finished.
        let measurement = self
            .probe
            .take()
            .and_then(|p| p.finish(machine, &self.model));
        let outcome = self.detector.end_interval();
        self.report.intervals += 1;

        if let Some(m) = measurement {
            // Per-phase IPC statistics for Table 5.
            let _ = self.tuner_mut(outcome.phase, machine.instret()); // ensure slots exist
            self.phase_ipc[outcome.phase.0 as usize].push(m.ipc);
            let interval_index = self.report.intervals - 1;
            self.tel.emit(|| Event::IntervalSample {
                phase: outcome.phase.0,
                index: interval_index,
                ipc: m.ipc,
                epi_nj: m.epi_nj,
                stable: outcome.continues_previous,
                instret: machine.instret(),
            });

            match self.plan {
                Plan::Trial(predicted) => {
                    if predicted == outcome.phase {
                        let tuner = &mut self.tuners[predicted.0 as usize];
                        if !tuner.is_done() {
                            tuner.record_traced(
                                m,
                                &self.tel,
                                Scope::Phase { phase: predicted.0 },
                                machine.instret(),
                            );
                            self.report.tunings += 1;
                        }
                    } else {
                        // The phase changed under the trial: discard the
                        // measurement and return to the safe full-size
                        // configuration so a half-tested trial setting
                        // cannot linger across foreign phases.
                        self.report.misattributed_trials += 1;
                        let mut applied = 0;
                        let _ = crate::cu::AceConfig::baseline().request_traced(
                            machine,
                            &mut applied,
                            &self.tel,
                            ReconfigCause::Reset,
                        );
                    }
                }
                Plan::Apply(predicted) => {
                    if predicted == outcome.phase {
                        self.report.intervals_in_tuned_phases += 1;
                        self.report.covered_instr += m.instr;
                    }
                }
                Plan::Idle => {}
            }
        }

        // 2. Plan the next interval. A recurring phase reuses its chosen
        // configuration as soon as it is recognized (the one-sampling-
        // interval identification latency of Table 1); *tuning* trials
        // additionally require the phase to be stable.
        self.plan = Plan::Idle;
        let _ = self.tuner_mut(outcome.phase, machine.instret()); // ensure slots exist
        let idx = outcome.phase.0 as usize;
        if let Some(best) = self.tuners[idx].best() {
            let mut applied = 0;
            let ok = best.request_traced(machine, &mut applied, &self.tel, ReconfigCause::Apply);
            self.report.reconfigs += applied;
            if ok && best.in_effect(machine) {
                self.plan = Plan::Apply(outcome.phase);
            }
        } else if outcome.continues_previous {
            if self.warmups[idx] > 0 {
                // One unmeasured stable interval at the reference
                // configuration before trials begin.
                self.warmups[idx] -= 1;
                if let Some(reference) = self.tuners[idx].next_trial() {
                    let mut applied = 0;
                    let _ = reference.request_traced(
                        machine,
                        &mut applied,
                        &self.tel,
                        ReconfigCause::Trial,
                    );
                }
            } else if let Some(trial) = self.tuners[idx].next_trial() {
                // L1D-only transitions are cheap (the window refills from
                // the L2 within a few thousand instructions), so those
                // trials measure immediately; an interval whose setup
                // changed the L2 absorbs the expensive refill unmeasured
                // and the following stable interval measures it.
                let l2_before = machine.level(ace_sim::CuKind::L2);
                let mut applied = 0;
                let ok =
                    trial.request_traced(machine, &mut applied, &self.tel, ReconfigCause::Trial);
                let l2_changed = machine.level(ace_sim::CuKind::L2) != l2_before;
                if ok && !l2_changed {
                    self.plan = Plan::Trial(outcome.phase);
                }
            }
        }
        // Unknown or changed phase: no adaptation this interval — the
        // scheme only acts on stable phases. (Resetting to full size here
        // would churn the caches at every transitional interval.)

        // Next-phase prediction (optional, off in the paper's baseline):
        // when the predictor confidently expects a *different* phase next
        // and that phase is already tuned, apply its configuration
        // preemptively — removing even the one-interval recurrence latency,
        // at the cost of wrong adaptations on mispredictions.
        if self.config.use_predictor {
            self.predictor.observe(outcome.phase);
            if let Some(next) = self.predictor.predict() {
                if next != outcome.phase {
                    if let Some(best) = self.tuners.get(next.0 as usize).and_then(|t| t.best()) {
                        let mut applied = 0;
                        let ok = best.request_traced(
                            machine,
                            &mut applied,
                            &self.tel,
                            ReconfigCause::Apply,
                        );
                        self.report.reconfigs += applied;
                        if ok && best.in_effect(machine) {
                            self.plan = Plan::Apply(next);
                        }
                    }
                }
            }
        }

        self.probe = Some(Probe::arm(machine, &self.model));
        self.next_boundary = machine.instret() + self.config.bbv.interval_instr;
    }

    /// The per-interval phase id history (diagnostics).
    pub fn phase_history(&self) -> &[ace_phase::PhaseId] {
        self.detector.history()
    }

    /// Per-phase tuner states with mean interval IPC (diagnostics).
    pub fn tuner_states(&self) -> impl Iterator<Item = (&ConfigTuner, f64)> {
        self.tuners
            .iter()
            .zip(self.phase_ipc.iter().map(|s| s.mean()))
    }

    /// Builds the end-of-run report.
    pub fn report(&self) -> BbvReport {
        let mut r = self.report.clone();
        r.phases = self.detector.phase_count() as u64;
        r.tuned_phases = self.tuners.iter().filter(|t| t.is_done()).count() as u64;
        let mut cov_sum = 0.0;
        let mut cov_n = 0u64;
        let mut means = OnlineStats::new();
        for s in &self.phase_ipc {
            if s.count() >= 2 {
                cov_sum += s.cov();
                cov_n += 1;
            }
            if s.count() > 0 {
                means.push(s.mean());
            }
        }
        r.per_phase_ipc_cov = if cov_n > 0 {
            cov_sum / cov_n as f64
        } else {
            0.0
        };
        r.inter_phase_ipc_cov = means.cov();
        r.stability = self.detector.stability();
        r.predictions = self.predictor.stats().predictions;
        r.prediction_accuracy = self.predictor.stats().accuracy();
        r
    }
}

impl AceManager for BbvAceManager {
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.tel = telemetry;
    }

    fn on_start(&mut self, machine: &mut Machine) {
        self.probe = Some(Probe::arm(machine, &self.model));
        self.next_boundary = machine.instret() + self.config.bbv.interval_instr;
    }

    fn on_block(&mut self, block: &Block, machine: &mut Machine) {
        if let Some(br) = block.branch {
            self.detector.note_branch(br.pc, block.ninstr);
        }
        if machine.instret() >= self.next_boundary {
            self.end_interval(machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_sim::{BranchEvent, MachineConfig, MemAccess};

    fn block(pc: u64, ninstr: u32, addr: u64) -> Block {
        Block {
            pc,
            ninstr,
            accesses: vec![MemAccess::load(addr)],
            branch: Some(BranchEvent {
                pc: pc + 56,
                taken: true,
            }),
        }
    }

    /// Runs `n` intervals of homogeneous behavior and returns the report.
    /// Guard intervals are scaled with the shortened sampling interval so
    /// the test exercises the same alignment the real configuration has
    /// (sampling interval ≈ the largest guard interval).
    fn run_intervals(n: usize) -> (BbvAceManager, Machine) {
        let mut cfg = MachineConfig::table2();
        cfg.l1d_reconfig_interval = 10_000;
        cfg.l2_reconfig_interval = 100_000;
        let mut machine =
            Machine::new(cfg).expect("Table 2 with scaled guard intervals is a valid config");
        let mut mgr = BbvAceManager::new(
            BbvManagerConfig {
                bbv: BbvConfig {
                    interval_instr: 100_100,
                    ..BbvConfig::default()
                },
                ..BbvManagerConfig::default()
            },
            EnergyModel::default_180nm(),
        );
        mgr.on_start(&mut machine);
        for _ in 0..n {
            let start = machine.instret();
            while machine.instret() < start + 100_200 {
                let b = block(0x1000, 50, 0x8000 + ((machine.instret() % 2048) & !7));
                machine.exec_block(&b);
                mgr.on_block(&b, &mut machine);
            }
        }
        (mgr, machine)
    }

    #[test]
    fn homogeneous_run_tunes_one_phase() {
        // The walk either finishes all 16 combos or aborts early once a
        // configuration violates the threshold; either way the phase ends
        // tuned after a handful of trials.
        let (mgr, _machine) = run_intervals(40);
        let r = mgr.report();
        assert_eq!(r.phases, 1, "one behavior, one phase");
        assert_eq!(r.tuned_phases, 1);
        assert!(r.tunings >= 4, "tunings {}", r.tunings);
        assert!(r.intervals_in_tuned_phases > 0);
        assert!(r.stability.stable_fraction() > 0.9);
    }

    #[test]
    fn tiny_working_set_tunes_down() {
        let (mgr, machine) = run_intervals(60);
        let r = mgr.report();
        assert_eq!(r.tuned_phases, 1);
        // 2 KB working set: the tuned configuration shrinks the L1D.
        let tuned = mgr
            .tuners
            .iter()
            .find(|t| t.is_done())
            .expect("report counted a tuned phase, so one tuner must be done");
        let best = tuned
            .best()
            .expect("a finished tuner always has a selection");
        let l1d = best
            .get(ace_sim::CuId::L1d)
            .expect("combined-list selections always assign the L1D");
        assert!(
            l1d > ace_sim::SizeLevel::LARGEST,
            "expected a smaller L1D, got {best}"
        );
        let _ = machine;
    }

    #[test]
    fn intervals_counted() {
        let (mgr, _m) = run_intervals(10);
        let r = mgr.report();
        assert!((9..=11).contains(&r.intervals), "intervals {}", r.intervals);
    }
}
