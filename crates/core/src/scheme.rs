//! The open scheme layer: [`TuningScheme`], [`SchemeRegistry`] and the
//! unified [`SchemeReport`].
//!
//! PR 5 replaced hardcoded CU fields with a registry of configurable
//! units; this module does the same for management schemes. A scheme is a
//! named factory ([`TuningScheme`]) producing a boxed [`SchemeManager`]
//! — an [`AceManager`] that can additionally summarize its run as a
//! [`SchemeReport`] and, if it supports it, expose warm-start plumbing
//! through [`WarmStartCapable`] instead of concrete downcasts.
//!
//! [`Experiment::scheme`](crate::Experiment::scheme) accepts anything
//! convertible into a [`SchemeSpec`]: a registered id (`"hotspot"`,
//! `"pdm"`, ...), a legacy [`Scheme`](crate::Scheme) enum value, or an
//! owned scheme instance for one-off configurations:
//!
//! ```
//! use ace_core::{Experiment, HotspotManagerConfig, HotspotScheme, SchemeSpec};
//! use std::sync::Arc;
//!
//! // By registered id:
//! let run = Experiment::preset("db")
//!     .scheme("hotspot")
//!     .instruction_limit(1_000_000)
//!     .run_scheme()?;
//! assert_eq!(run.report.scheme, "hotspot");
//!
//! // By instance, for a non-default configuration:
//! let custom = HotspotScheme(HotspotManagerConfig {
//!     sample_period: 8,
//!     ..HotspotManagerConfig::default()
//! });
//! let run = Experiment::preset("db")
//!     .scheme(SchemeSpec::instance(Arc::new(custom)))
//!     .instruction_limit(1_000_000)
//!     .run_scheme()?;
//! assert_eq!(run.report.scheme, "hotspot");
//! # Ok::<(), ace_core::ExperimentError>(())
//! ```

use crate::cu::AceConfig;
use crate::driver::RunRecord;
use crate::manager::{AceManager, FixedManager, NullManager};
use crate::pdm_mgr::{PdmAceManager, PdmManagerConfig, PdmReport};
use crate::warm::WarmStartContext;
use crate::{
    BbvAceManager, BbvManagerConfig, BbvReport, HotspotAceManager, HotspotManagerConfig,
    HotspotReport, PositionalAceManager, PositionalManagerConfig, PositionalReport,
};
use ace_energy::EnergyModel;
use ace_workloads::Program;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Everything a [`TuningScheme`] may consult when building its manager.
pub struct SchemeCtx<'a> {
    /// The resolved workload (positional adaptation needs its static
    /// method sizes).
    pub program: &'a Program,
    /// The energy model driving the manager's tuning objective.
    pub model: EnergyModel,
}

/// Warm-start plumbing, for schemes that can adopt selections from a
/// shared tuning store (see [`WarmStartContext`]).
///
/// Reached through [`SchemeManager::warm_start`], so fleet drivers wire
/// the store without naming a concrete manager type.
pub trait WarmStartCapable {
    /// Attaches a frozen snapshot of the shared tuning store.
    fn set_warm_start(&mut self, context: WarmStartContext);
    /// Detaches the context, carrying this run's buffered publications.
    fn take_warm_start(&mut self) -> Option<WarmStartContext>;
}

/// An [`AceManager`] produced by a [`TuningScheme`]: the policy hooks
/// plus end-of-run reporting and optional capabilities.
pub trait SchemeManager: AceManager {
    /// Summarizes the run. `record` supplies machine-counted facts the
    /// manager cannot observe itself — every scheme fills
    /// [`SchemeReport::guard_rejections`] from it uniformly.
    fn scheme_report(&self, record: &RunRecord) -> SchemeReport;

    /// The warm-start capability, if this scheme supports one.
    fn warm_start(&mut self) -> Option<&mut dyn WarmStartCapable> {
        None
    }
}

/// A named, registrable management scheme: a factory for the manager that
/// drives one run.
pub trait TuningScheme: Send + Sync {
    /// Stable lowercase id, used for registry lookup, job keys, results
    /// cache namespaces and CLI flags.
    fn name(&self) -> &str;

    /// Builds a fresh manager for one run.
    fn build(&self, ctx: &SchemeCtx<'_>) -> Box<dyn SchemeManager>;
}

/// Per-scheme extension payload of a [`SchemeReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SchemeExt {
    /// Schemes with nothing beyond the common counters (baseline, fixed).
    #[default]
    None,
    /// The DO-hotspot scheme's full report.
    Hotspot(HotspotReport),
    /// The BBV scheme's full report.
    Bbv(BbvReport),
    /// The positional scheme's full report.
    Positional(PositionalReport),
    /// The phase-distance-mapping scheme's full report.
    Pdm(PdmReport),
}

/// The unified end-of-run report every scheme produces.
///
/// Common counters are comparable across schemes (the headline tables
/// read them without matching on the scheme); scheme-specific detail
/// lives in [`SchemeReport::ext`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchemeReport {
    /// The scheme id that produced this report.
    pub scheme: String,
    /// Configuration trials measured.
    pub tunings: u64,
    /// Control-register changes applying a selected configuration.
    pub reconfigs: u64,
    /// Instructions executed under a selected configuration.
    pub covered_instr: u64,
    /// Reconfiguration requests the hardware guard rejected (filled from
    /// the machine counters, uniformly for every scheme).
    pub guard_rejections: u64,
    /// Scopes (hotspots, phases, procedures) whose tuning completed.
    pub tuned_scopes: u64,
    /// Tuning-store lookups that matched an entry.
    pub warm_hits: u64,
    /// Tuning-store lookups that found nothing.
    pub warm_misses: u64,
    /// Candidate-list trials avoided across all warm starts.
    pub warm_trials_saved: u64,
    /// Converged selections published to the tuning store.
    pub store_publishes: u64,
    /// Scheme-specific detail.
    pub ext: SchemeExt,
}

impl SchemeReport {
    /// A zeroed report tagged with `scheme`.
    pub fn empty(scheme: impl Into<String>) -> SchemeReport {
        SchemeReport {
            scheme: scheme.into(),
            ..SchemeReport::default()
        }
    }

    /// Folds the report into a metrics registry under
    /// `scheme.<id>.<counter>` names — the observability seam every
    /// scheme shares. Counters only (all deterministic run behavior);
    /// the event stream is untouched, so recorded telemetry traces are
    /// unaffected. Scheme-specific detail contributes a few counters per
    /// [`SchemeExt`] variant on top of the common set.
    pub fn record_metrics(&self, metrics: &ace_telemetry::Metrics) {
        let c = |name: &str, v: u64| {
            metrics
                .counter(&format!("scheme.{}.{name}", self.scheme))
                .add(v);
        };
        c("runs", 1);
        c("tunings", self.tunings);
        c("reconfigs", self.reconfigs);
        c("covered_instr", self.covered_instr);
        c("guard_rejections", self.guard_rejections);
        c("tuned_scopes", self.tuned_scopes);
        c("warm_hits", self.warm_hits);
        c("warm_misses", self.warm_misses);
        c("warm_trials_saved", self.warm_trials_saved);
        c("store_publishes", self.store_publishes);
        match &self.ext {
            SchemeExt::None => {}
            SchemeExt::Hotspot(h) => {
                c("small_hotspots", h.small_hotspots);
                c("retunings", h.retunings);
            }
            SchemeExt::Bbv(b) => {
                c("phases", b.phases);
                c("intervals", b.intervals);
                c("misattributed_trials", b.misattributed_trials);
            }
            SchemeExt::Positional(p) => {
                c("large_procedures", p.large_procedures);
                c("applications", p.applications);
            }
            SchemeExt::Pdm(p) => {
                c("predict_hits", p.predict_hits);
                c("predict_misses", p.predict_misses);
                c("known_phases", p.known_phases);
            }
        }
    }
}

/// How an [`crate::Experiment`] names its scheme: a registered id or an
/// owned instance.
#[derive(Clone)]
pub struct SchemeSpec(SpecInner);

#[derive(Clone)]
enum SpecInner {
    Named(String),
    Instance(Arc<dyn TuningScheme>),
}

impl SchemeSpec {
    /// A scheme to be resolved by id against the experiment's registry.
    pub fn named(id: impl Into<String>) -> SchemeSpec {
        SchemeSpec(SpecInner::Named(id.into()))
    }

    /// A concrete scheme instance, bypassing the registry — the way to
    /// run a non-default scheme configuration.
    pub fn instance(scheme: Arc<dyn TuningScheme>) -> SchemeSpec {
        SchemeSpec(SpecInner::Instance(scheme))
    }

    /// The scheme id this spec names.
    pub fn id(&self) -> String {
        match &self.0 {
            SpecInner::Named(id) => id.clone(),
            SpecInner::Instance(s) => s.name().to_string(),
        }
    }

    /// Resolves to a runnable scheme, consulting `registry` for named
    /// specs. `None` if the id is not registered.
    pub fn resolve(&self, registry: &SchemeRegistry) -> Option<Arc<dyn TuningScheme>> {
        match &self.0 {
            SpecInner::Named(id) => registry.get(id).cloned(),
            SpecInner::Instance(s) => Some(Arc::clone(s)),
        }
    }
}

impl fmt::Debug for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            SpecInner::Named(id) => write!(f, "SchemeSpec::named({id:?})"),
            SpecInner::Instance(s) => write!(f, "SchemeSpec::instance({:?})", s.name()),
        }
    }
}

impl From<&str> for SchemeSpec {
    fn from(id: &str) -> SchemeSpec {
        SchemeSpec::named(id)
    }
}

impl From<String> for SchemeSpec {
    fn from(id: String) -> SchemeSpec {
        SchemeSpec::named(id)
    }
}

/// The scheme registry: id → [`TuningScheme`], mirroring the simulator's
/// `CuRegistry` for configurable units.
#[derive(Clone, Default)]
pub struct SchemeRegistry {
    schemes: Vec<Arc<dyn TuningScheme>>,
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn new() -> SchemeRegistry {
        SchemeRegistry::default()
    }

    /// The five built-in schemes under their default configurations:
    /// `baseline`, `hotspot`, `bbv`, `positional`, `pdm`.
    pub fn builtin() -> SchemeRegistry {
        let mut reg = SchemeRegistry::new();
        reg.register(Arc::new(BaselineScheme));
        reg.register(Arc::new(HotspotScheme::default()));
        reg.register(Arc::new(BbvScheme::default()));
        reg.register(Arc::new(PositionalScheme::default()));
        reg.register(Arc::new(PdmScheme::default()));
        reg
    }

    /// Registers `scheme`, replacing any scheme of the same name.
    pub fn register(&mut self, scheme: Arc<dyn TuningScheme>) {
        if let Some(slot) = self.schemes.iter_mut().find(|s| s.name() == scheme.name()) {
            *slot = scheme;
        } else {
            self.schemes.push(scheme);
        }
    }

    /// The scheme registered as `name`.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn TuningScheme>> {
        self.schemes.iter().find(|s| s.name() == name)
    }

    /// Registered ids, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.schemes.iter().map(|s| s.name())
    }

    /// Number of registered schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether no scheme is registered.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }
}

impl fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.names()).finish()
    }
}

// ---------------------------------------------------------------------
// Built-in schemes.
// ---------------------------------------------------------------------

/// The non-adaptive baseline: every CU pinned at its largest size.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineScheme;

impl TuningScheme for BaselineScheme {
    fn name(&self) -> &str {
        "baseline"
    }

    fn build(&self, _ctx: &SchemeCtx<'_>) -> Box<dyn SchemeManager> {
        Box::new(NullManager)
    }
}

/// A fixed configuration installed at start (static-oracle points).
#[derive(Debug, Clone, Copy)]
pub struct FixedScheme(pub AceConfig);

impl TuningScheme for FixedScheme {
    fn name(&self) -> &str {
        "fixed"
    }

    fn build(&self, _ctx: &SchemeCtx<'_>) -> Box<dyn SchemeManager> {
        Box::new(FixedManager::new(self.0))
    }
}

/// The paper's DO-based hotspot scheme with CU decoupling.
#[derive(Debug, Clone, Default)]
pub struct HotspotScheme(pub HotspotManagerConfig);

impl TuningScheme for HotspotScheme {
    fn name(&self) -> &str {
        "hotspot"
    }

    fn build(&self, ctx: &SchemeCtx<'_>) -> Box<dyn SchemeManager> {
        Box::new(HotspotAceManager::new(self.0.clone(), ctx.model))
    }
}

/// The temporal baseline: BBV phases + tune-all-combinations.
#[derive(Debug, Clone, Default)]
pub struct BbvScheme(pub BbvManagerConfig);

impl TuningScheme for BbvScheme {
    fn name(&self) -> &str {
        "bbv"
    }

    fn build(&self, ctx: &SchemeCtx<'_>) -> Box<dyn SchemeManager> {
        Box::new(BbvAceManager::new(self.0.clone(), ctx.model))
    }
}

/// Huang et al.'s positional scheme (large-procedure boundaries).
#[derive(Debug, Clone, Default)]
pub struct PositionalScheme(pub PositionalManagerConfig);

impl TuningScheme for PositionalScheme {
    fn name(&self) -> &str {
        "positional"
    }

    fn build(&self, ctx: &SchemeCtx<'_>) -> Box<dyn SchemeManager> {
        Box::new(PositionalAceManager::new(
            ctx.program,
            self.0.clone(),
            ctx.model,
        ))
    }
}

/// Phase Distance Mapping: hotspot-boundary adaptation that predicts a
/// new phase's configuration from its behavioral distance to an
/// already-tuned phase instead of re-walking the candidate list.
#[derive(Debug, Clone, Default)]
pub struct PdmScheme(pub PdmManagerConfig);

impl TuningScheme for PdmScheme {
    fn name(&self) -> &str {
        "pdm"
    }

    fn build(&self, ctx: &SchemeCtx<'_>) -> Box<dyn SchemeManager> {
        Box::new(PdmAceManager::new(self.0.clone(), ctx.model))
    }
}

// ---------------------------------------------------------------------
// SchemeManager implementations for the built-in managers.
// ---------------------------------------------------------------------

impl SchemeManager for NullManager {
    fn scheme_report(&self, record: &RunRecord) -> SchemeReport {
        let mut r = SchemeReport::empty("baseline");
        r.guard_rejections = record.counters.guard_rejections;
        r
    }
}

impl SchemeManager for FixedManager {
    fn scheme_report(&self, record: &RunRecord) -> SchemeReport {
        let mut r = SchemeReport::empty("fixed");
        r.guard_rejections = record.counters.guard_rejections;
        r
    }
}

impl SchemeManager for HotspotAceManager {
    fn scheme_report(&self, record: &RunRecord) -> SchemeReport {
        let mut h = self.report();
        h.guard_rejections = record.counters.guard_rejections;
        SchemeReport {
            scheme: "hotspot".to_string(),
            tunings: h.cu.iter().map(|s| s.tunings).sum(),
            reconfigs: h.cu.iter().map(|s| s.reconfigs).sum(),
            covered_instr: h.cu.iter().map(|s| s.covered_instr).sum(),
            guard_rejections: h.guard_rejections,
            tuned_scopes: h.tuned_hotspots,
            warm_hits: h.warm_hits,
            warm_misses: h.warm_misses,
            warm_trials_saved: h.warm_trials_saved,
            store_publishes: h.store_publishes,
            ext: SchemeExt::Hotspot(h),
        }
    }

    fn warm_start(&mut self) -> Option<&mut dyn WarmStartCapable> {
        Some(self)
    }
}

impl WarmStartCapable for HotspotAceManager {
    fn set_warm_start(&mut self, context: WarmStartContext) {
        HotspotAceManager::set_warm_start(self, context);
    }

    fn take_warm_start(&mut self) -> Option<WarmStartContext> {
        HotspotAceManager::take_warm_start(self)
    }
}

impl SchemeManager for BbvAceManager {
    fn scheme_report(&self, record: &RunRecord) -> SchemeReport {
        let b = self.report();
        SchemeReport {
            scheme: "bbv".to_string(),
            tunings: b.tunings,
            reconfigs: b.reconfigs,
            covered_instr: b.covered_instr,
            guard_rejections: record.counters.guard_rejections,
            tuned_scopes: b.tuned_phases,
            warm_hits: 0,
            warm_misses: 0,
            warm_trials_saved: 0,
            store_publishes: 0,
            ext: SchemeExt::Bbv(b),
        }
    }
}

impl SchemeManager for PositionalAceManager {
    fn scheme_report(&self, record: &RunRecord) -> SchemeReport {
        let p = self.report();
        SchemeReport {
            scheme: "positional".to_string(),
            tunings: p.tunings,
            reconfigs: p.reconfigs,
            covered_instr: p.covered_instr,
            guard_rejections: record.counters.guard_rejections,
            tuned_scopes: p.tuned,
            warm_hits: 0,
            warm_misses: 0,
            warm_trials_saved: 0,
            store_publishes: 0,
            ext: SchemeExt::Positional(p),
        }
    }
}

impl SchemeManager for PdmAceManager {
    fn scheme_report(&self, record: &RunRecord) -> SchemeReport {
        let mut p = self.report();
        p.base.guard_rejections = record.counters.guard_rejections;
        SchemeReport {
            scheme: "pdm".to_string(),
            tunings: p.base.cu.iter().map(|s| s.tunings).sum(),
            reconfigs: p.base.cu.iter().map(|s| s.reconfigs).sum(),
            covered_instr: p.base.cu.iter().map(|s| s.covered_instr).sum(),
            guard_rejections: p.base.guard_rejections,
            tuned_scopes: p.base.tuned_hotspots,
            warm_hits: 0,
            warm_misses: 0,
            warm_trials_saved: 0,
            store_publishes: 0,
            ext: SchemeExt::Pdm(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_the_five_schemes() {
        let reg = SchemeRegistry::builtin();
        let names: Vec<&str> = reg.names().collect();
        assert_eq!(
            names,
            ["baseline", "hotspot", "bbv", "positional", "pdm"],
            "builtin registration order is stable"
        );
        assert_eq!(reg.len(), 5);
        assert!(!reg.is_empty());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn register_replaces_same_name() {
        let mut reg = SchemeRegistry::builtin();
        let custom = HotspotScheme(HotspotManagerConfig {
            sample_period: 4,
            ..HotspotManagerConfig::default()
        });
        reg.register(Arc::new(custom));
        assert_eq!(reg.len(), 5, "same-name registration replaces");
        let names: Vec<&str> = reg.names().collect();
        assert_eq!(names[1], "hotspot", "replacement keeps its slot");
    }

    #[test]
    fn spec_resolution_and_ids() {
        let reg = SchemeRegistry::builtin();
        let spec = SchemeSpec::named("bbv");
        assert_eq!(spec.id(), "bbv");
        assert_eq!(spec.resolve(&reg).unwrap().name(), "bbv");

        let spec = SchemeSpec::named("nope");
        assert!(spec.resolve(&reg).is_none());

        let spec = SchemeSpec::instance(Arc::new(BaselineScheme));
        assert_eq!(spec.id(), "baseline");
        assert!(spec.resolve(&SchemeRegistry::new()).is_some());
    }

    #[test]
    fn warm_start_capability_is_scheme_specific() {
        let program = ace_workloads::preset("db").unwrap();
        let ctx = SchemeCtx {
            program: &program,
            model: EnergyModel::default_180nm(),
        };
        let reg = SchemeRegistry::builtin();
        let mut hotspot = reg.get("hotspot").unwrap().build(&ctx);
        assert!(hotspot.warm_start().is_some());
        let mut baseline = reg.get("baseline").unwrap().build(&ctx);
        assert!(baseline.warm_start().is_none());
        let mut pdm = reg.get("pdm").unwrap().build(&ctx);
        assert!(pdm.warm_start().is_none());
    }
}
