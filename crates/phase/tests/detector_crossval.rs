//! Cross-validation of the phase detectors on synthetic interval streams
//! with *known* phase structure: each detector must recover the planted
//! phases, and their failure modes must match the literature's.

use ace_phase::{
    BbvConfig, BbvDetector, BranchCounterConfig, BranchCounterDetector, PhaseId, PhasePredictor,
    WorkingSetConfig, WorkingSetDetector,
};

/// Feeds one interval of "phase k" behavior into a BBV detector: a
/// distinct cluster of hot branch PCs plus light noise.
fn bbv_interval(d: &mut BbvDetector, phase: u64, noise: u64) {
    for i in 0..12u64 {
        // Hot cluster for this phase.
        d.note_branch(0x10_0000 * (phase + 1) + i * 4, 400);
    }
    for i in 0..noise {
        d.note_branch(0x90_0000 + (phase * 131 + i * 17) % 4096 * 4, 40);
    }
}

#[test]
fn bbv_recovers_planted_phase_sequence() {
    let mut d = BbvDetector::new(BbvConfig::default());
    // Planted structure: A A A B B A A A B B ... (period 5).
    let planted: Vec<u64> = (0..40).map(|i| if i % 5 < 3 { 0 } else { 1 }).collect();
    let mut ids = Vec::new();
    for &p in &planted {
        bbv_interval(&mut d, p, 8);
        ids.push(d.end_interval().phase);
    }
    // Exactly two phase ids, consistently assigned.
    assert_eq!(d.phase_count(), 2, "planted two phases");
    for (i, &p) in planted.iter().enumerate() {
        let expect = ids[if p == 0 { 0 } else { 3 }];
        assert_eq!(ids[i], expect, "interval {i} misclassified");
    }
    // Stability: runs of 3 and 2 -> all intervals stable.
    assert!(d.stability().stable_fraction() > 0.99);
}

#[test]
fn bbv_separates_many_phases() {
    let mut d = BbvDetector::new(BbvConfig::default());
    for round in 0..3 {
        for phase in 0..6u64 {
            bbv_interval(&mut d, phase, 4);
            let out = d.end_interval();
            if round > 0 {
                assert!(
                    !out.is_new,
                    "phase {phase} must be recognized on recurrence"
                );
            }
        }
    }
    assert_eq!(d.phase_count(), 6);
}

#[test]
fn predictor_learns_the_planted_periodicity() {
    let mut d = BbvDetector::new(BbvConfig::default());
    let mut pred = PhasePredictor::new(0.6);
    // Runs of 4 and 2 land in distinct run-length buckets (3-4 vs 2), so
    // the RLE-Markov predictor can tell "mid-run" from "end of run".
    let planted: Vec<u64> = (0..60).map(|i| if i % 6 < 4 { 0 } else { 1 }).collect();
    let mut correct = 0u32;
    let mut issued = 0u32;
    let mut last_prediction: Option<PhaseId> = None;
    for &p in &planted {
        bbv_interval(&mut d, p, 0);
        let outcome = d.end_interval();
        if let Some(pr) = last_prediction.take() {
            issued += 1;
            correct += (pr == outcome.phase) as u32;
        }
        pred.observe(outcome.phase);
        last_prediction = pred.predict();
    }
    assert!(issued > 10, "issued {issued}");
    let acc = correct as f64 / issued as f64;
    assert!(
        acc > 0.9,
        "bucket-aligned periodic pattern should predict well, got {acc:.2}"
    );
}

#[test]
fn working_set_tracks_planted_locality_phases() {
    let mut d = WorkingSetDetector::new(WorkingSetConfig::default());
    let mut same = 0;
    let mut total = 0;
    for i in 0..30u64 {
        let phase = (i / 5) % 2; // 5-interval runs of two disjoint sets
        let base = 0x100_0000 * (phase + 1);
        for a in (0..12_288u64).step_by(64) {
            d.note_access(base + a);
        }
        let out = d.end_interval();
        if i > 0 {
            total += 1;
            same += out.same_phase as u64;
        }
        // Expected: same within runs (4 of 5), different at switches.
        if i % 5 != 0 && i > 0 {
            assert!(out.same_phase, "interval {i} inside a run");
        } else if i > 0 {
            assert!(!out.same_phase, "interval {i} at a phase switch");
        }
    }
    // 29 compared intervals, phase switches at i = 5, 10, 15, 20, 25.
    assert_eq!(total, 29);
    assert_eq!(same, 24);
}

#[test]
fn branch_counter_misses_what_bbv_catches() {
    // Two planted phases with *identical* branch rates but disjoint code:
    // BBV separates them; the branch counter cannot (its documented
    // blindness, the reason BBV superseded it).
    let mut bbv = BbvDetector::new(BbvConfig::default());
    let mut bc = BranchCounterDetector::new(BranchCounterConfig::default());
    let mut bbv_ids = Vec::new();
    let mut bc_stable_at_switch = 0;
    for i in 0..20u64 {
        let phase = (i / 2) % 2;
        bbv_interval(&mut bbv, phase, 0);
        bc.note_branches(5000); // same rate in both phases
        bbv_ids.push(bbv.end_interval().phase);
        let out = bc.end_interval();
        if i > 0 && i % 2 == 0 {
            bc_stable_at_switch += out.same_phase as u64;
        }
    }
    assert!(bbv_ids[0] != bbv_ids[2], "BBV separates the phases");
    assert!(
        bc_stable_at_switch >= 8,
        "branch counter sees no change at switches"
    );
}
