//! Conditional-branch-counter phase detection (Balasubramonian,
//! Albonesi, Buyuktosunoglu & Dwarkadas, MICRO 2000 — reference \[6\] of the
//! paper).
//!
//! The earliest and simplest temporal detector the paper surveys: count
//! conditional branches per sampling interval and declare a phase change
//! when the count differs from the previous interval's by more than a
//! threshold. It is cheap but *nameless* — unlike BBV signatures it cannot
//! recognize a recurring phase, so every recurrence pays the full tuning
//! process again. Included for the detector-comparison extension.

use serde::{Deserialize, Serialize};

/// Branch-counter detector configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchCounterConfig {
    /// Absolute difference in branch counts (per interval) tolerated
    /// before declaring a phase change, as a fraction of the previous
    /// interval's count.
    pub delta_threshold: f64,
}

impl Default for BranchCounterConfig {
    fn default() -> Self {
        BranchCounterConfig {
            delta_threshold: 0.05,
        }
    }
}

/// Outcome of closing one interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchCounterOutcome {
    /// `true` when this interval's branch count matches the previous one.
    pub same_phase: bool,
    /// This interval's conditional-branch count.
    pub branches: u64,
    /// Relative difference to the previous interval.
    pub delta: f64,
}

/// The conditional-branch-counter detector.
///
/// # Examples
///
/// ```
/// use ace_phase::{BranchCounterDetector, BranchCounterConfig};
/// let mut d = BranchCounterDetector::new(BranchCounterConfig::default());
/// d.note_branches(1000);
/// let _ = d.end_interval();
/// d.note_branches(1010);
/// assert!(d.end_interval().same_phase); // within 5%
/// d.note_branches(2000);
/// assert!(!d.end_interval().same_phase);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchCounterDetector {
    config: BranchCounterConfig,
    current: u64,
    previous: Option<u64>,
    stable_intervals: u64,
    total_intervals: u64,
}

impl BranchCounterDetector {
    /// Creates a detector.
    pub fn new(config: BranchCounterConfig) -> BranchCounterDetector {
        BranchCounterDetector {
            config,
            ..BranchCounterDetector::default()
        }
    }

    /// Adds `n` conditional branches to the current interval.
    #[inline]
    pub fn note_branches(&mut self, n: u64) {
        self.current += n;
    }

    /// Closes the interval and compares against the previous one.
    pub fn end_interval(&mut self) -> BranchCounterOutcome {
        let branches = self.current;
        self.current = 0;
        self.total_intervals += 1;
        let (same_phase, delta) = match self.previous {
            Some(prev) if prev > 0 => {
                let delta = (branches as f64 - prev as f64).abs() / prev as f64;
                (delta <= self.config.delta_threshold, delta)
            }
            Some(_) => (branches == 0, f64::INFINITY),
            None => (false, f64::INFINITY),
        };
        if same_phase {
            self.stable_intervals += 1;
        }
        self.previous = Some(branches);
        BranchCounterOutcome {
            same_phase,
            branches,
            delta,
        }
    }

    /// Fraction of intervals whose branch count matched their predecessor.
    pub fn stable_fraction(&self) -> f64 {
        if self.total_intervals == 0 {
            0.0
        } else {
            self.stable_intervals as f64 / self.total_intervals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_counts_are_stable() {
        let mut d = BranchCounterDetector::new(BranchCounterConfig::default());
        for _ in 0..10 {
            d.note_branches(5000);
            d.end_interval();
        }
        assert!(d.stable_fraction() > 0.85, "got {}", d.stable_fraction());
    }

    #[test]
    fn count_jumps_break_stability() {
        let mut d = BranchCounterDetector::new(BranchCounterConfig::default());
        d.note_branches(5000);
        d.end_interval();
        d.note_branches(8000);
        let out = d.end_interval();
        assert!(!out.same_phase);
        assert!((out.delta - 0.6).abs() < 1e-9);
    }

    #[test]
    fn cannot_distinguish_equal_counts() {
        // The detector's blindness: two *different* behaviors with the same
        // branch rate look like one stable phase — why BBV superseded it.
        let mut d = BranchCounterDetector::new(BranchCounterConfig::default());
        d.note_branches(5000); // "phase A"
        d.end_interval();
        d.note_branches(5000); // behaviorally different "phase B"
        assert!(d.end_interval().same_phase);
    }

    #[test]
    fn zero_branch_intervals() {
        let mut d = BranchCounterDetector::new(BranchCounterConfig::default());
        let first = d.end_interval();
        assert!(!first.same_phase, "no history yet");
        let second = d.end_interval();
        assert!(second.same_phase, "0 == 0");
    }
}
