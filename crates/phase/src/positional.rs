//! Positional phase detection (Huang, Renau, Torrellas, ISCA 2003).
//!
//! The original positional approach adapts hardware at the boundaries of
//! *large procedures* — no DO system, no hotspot threshold: a procedure
//! qualifies once its observed per-invocation size exceeds a fixed cutoff.
//! The paper (Section 3.5) argues this under-performs the hotspot scheme
//! because large procedures are not necessarily *frequently invoked*, so
//! tuned configurations are applied fewer times, and fine-grain changes
//! inside a large procedure are invisible. Included here as an ablation
//! baseline.

use ace_workloads::MethodId;
use serde::{Deserialize, Serialize};

/// Positional detector configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositionalConfig {
    /// Per-invocation inclusive size above which a procedure is "large"
    /// and becomes an adaptation point.
    pub large_procedure_instr: u64,
    /// Invocations observed before deciding (sizes are averaged).
    pub observe_invocations: u32,
}

impl Default for PositionalConfig {
    fn default() -> Self {
        PositionalConfig {
            large_procedure_instr: 500_000,
            observe_invocations: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ProcState {
    invocations: u64,
    observed_instr: u64,
    observed_count: u32,
    large: bool,
    decided: bool,
}

/// Tracks which procedures are adaptation points.
///
/// # Examples
///
/// ```
/// use ace_phase::{PositionalDetector, PositionalConfig};
/// use ace_workloads::MethodId;
///
/// let mut d = PositionalDetector::new(8, PositionalConfig::default());
/// let m = MethodId(3);
/// d.on_exit(m, 900_000);
/// d.on_exit(m, 900_000);
/// assert!(d.is_large(m));
/// ```
#[derive(Debug, Clone)]
pub struct PositionalDetector {
    config: PositionalConfig,
    procs: Vec<ProcState>,
}

impl PositionalDetector {
    /// Creates a detector for a program with `method_count` procedures.
    pub fn new(method_count: usize, config: PositionalConfig) -> PositionalDetector {
        PositionalDetector {
            config,
            procs: vec![ProcState::default(); method_count],
        }
    }

    /// Records a completed invocation of `m` with the given inclusive size;
    /// returns `true` if `m` just became an adaptation point.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range for the program this detector was
    /// sized for.
    pub fn on_exit(&mut self, m: MethodId, invocation_instr: u64) -> bool {
        let cfg_obs = self.config.observe_invocations;
        let cutoff = self.config.large_procedure_instr;
        let p = &mut self.procs[m.0 as usize];
        p.invocations += 1;
        if p.decided {
            return false;
        }
        p.observed_instr += invocation_instr;
        p.observed_count += 1;
        if p.observed_count >= cfg_obs {
            p.decided = true;
            p.large = p.observed_instr / p.observed_count as u64 >= cutoff;
            return p.large;
        }
        false
    }

    /// Whether `m` is a large-procedure adaptation point.
    pub fn is_large(&self, m: MethodId) -> bool {
        self.procs[m.0 as usize].large
    }

    /// Number of adaptation points discovered.
    pub fn large_count(&self) -> usize {
        self.procs.iter().filter(|p| p.large).count()
    }

    /// Invocations recorded for `m`.
    pub fn invocations(&self, m: MethodId) -> u64 {
        self.procs[m.0 as usize].invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_procedures_never_qualify() {
        let mut d = PositionalDetector::new(4, PositionalConfig::default());
        for _ in 0..10 {
            d.on_exit(MethodId(0), 10_000);
        }
        assert!(!d.is_large(MethodId(0)));
        assert_eq!(d.large_count(), 0);
        assert_eq!(d.invocations(MethodId(0)), 10);
    }

    #[test]
    fn decision_is_one_shot() {
        let mut d = PositionalDetector::new(2, PositionalConfig::default());
        assert!(!d.on_exit(MethodId(1), 600_000), "still observing");
        assert!(
            d.on_exit(MethodId(1), 600_000),
            "second observation decides"
        );
        assert!(!d.on_exit(MethodId(1), 600_000), "already decided");
        assert!(d.is_large(MethodId(1)));
    }

    #[test]
    fn averaging_across_observations() {
        // One big + one tiny invocation: average below cutoff.
        let mut d = PositionalDetector::new(1, PositionalConfig::default());
        d.on_exit(MethodId(0), 700_000);
        d.on_exit(MethodId(0), 100_000);
        assert!(!d.is_large(MethodId(0)), "mean 400 K < 500 K cutoff");
    }
}
