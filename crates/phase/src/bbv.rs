//! Basic Block Vector (BBV) phase detection (Sherwood, Sair, Calder).
//!
//! This is the temporal baseline the paper compares against, configured as
//! in Section 4.1: an accumulator table of uncompressed buckets indexed by
//! branch PC bits, an **unlimited** signature table, Manhattan-distance
//! matching, and stable/transitional classification (a phase is *stable*
//! when it persists for two or more consecutive sampling intervals).
//! Recurring phases keep their identity, so the ACE manager can reuse or
//! resume their tuning state — the generosity the paper grants the BBV
//! implementation. No next-phase predictor is modeled (ditto).

use serde::{Deserialize, Serialize};

/// Identifies a detected phase (an equivalence class of BBV signatures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhaseId(pub u32);

impl std::fmt::Display for PhaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// BBV detector configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BbvConfig {
    /// Sampling interval length in instructions (paper: 1 M, matching the
    /// L2 reconfiguration interval).
    pub interval_instr: u64,
    /// Accumulator buckets (paper: 32 uncompressed buckets).
    pub buckets: usize,
    /// Manhattan distance (on vectors normalized to sum 1, so the range is
    /// `[0, 2]`) below which two signatures are the same phase. Program
    /// phases built from large method invocations sample differently into
    /// successive intervals, so the threshold sits well above that mixing
    /// noise and well below the ~2.0 distance of disjoint code.
    pub distance_threshold: f64,
}

impl Default for BbvConfig {
    fn default() -> Self {
        BbvConfig {
            interval_instr: 1_000_000,
            buckets: 128,
            distance_threshold: 1.1,
        }
    }
}

/// Outcome of closing one sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalOutcome {
    /// The phase this interval was classified into.
    pub phase: PhaseId,
    /// `true` if a new signature had to be allocated.
    pub is_new: bool,
    /// `true` if this interval continues the previous interval's phase —
    /// the causal stability test the tuning algorithm may act on.
    pub continues_previous: bool,
    /// Distance to the matched signature (0.0 for a new phase).
    pub distance: f64,
}

/// The BBV phase detector.
///
/// Feed every conditional branch via [`BbvDetector::note_branch`]; the
/// caller closes intervals (every `interval_instr` instructions) with
/// [`BbvDetector::end_interval`].
///
/// # Examples
///
/// ```
/// use ace_phase::{BbvDetector, BbvConfig};
/// let mut d = BbvDetector::new(BbvConfig::default());
/// // Interval 1: branchy code at one PC cluster.
/// for _ in 0..1000 { d.note_branch(0x1000, 40); }
/// let a = d.end_interval();
/// // Interval 2: same behavior -> same phase, now stable.
/// for _ in 0..1000 { d.note_branch(0x1000, 40); }
/// let b = d.end_interval();
/// assert_eq!(a.phase, b.phase);
/// assert!(b.continues_previous);
/// ```
#[derive(Debug, Clone)]
pub struct BbvDetector {
    config: BbvConfig,
    acc: Vec<u64>,
    signatures: Vec<Vec<f64>>,
    last_phase: Option<PhaseId>,
    history: Vec<PhaseId>,
}

impl BbvDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `config.buckets` is zero or the threshold is not in
    /// `(0, 2]`.
    pub fn new(config: BbvConfig) -> BbvDetector {
        assert!(config.buckets > 0, "need at least one bucket");
        assert!(
            config.distance_threshold > 0.0 && config.distance_threshold <= 2.0,
            "threshold must be in (0, 2]"
        );
        BbvDetector {
            acc: vec![0; config.buckets],
            signatures: Vec::new(),
            last_phase: None,
            history: Vec::new(),
            config,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &BbvConfig {
        &self.config
    }

    /// Records a conditional branch at `pc` weighted by the instructions of
    /// its basic block (the BBV weighting of Sherwood et al.).
    #[inline]
    pub fn note_branch(&mut self, pc: u64, block_len: u32) {
        // Hash the (word-aligned) branch PC into the accumulator. The
        // original proposal uses a random-projection hash; a Fibonacci
        // multiplicative hash spreads the regularly spaced branch addresses
        // of compiled code over all buckets, which plain low-order bits do
        // not (64-byte-aligned blocks would alias into two buckets).
        let h = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let idx = (h as usize) % self.config.buckets;
        self.acc[idx] += block_len as u64;
    }

    /// Manhattan distance between two normalized vectors.
    fn distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    /// Closes the current sampling interval and classifies it.
    pub fn end_interval(&mut self) -> IntervalOutcome {
        let total: u64 = self.acc.iter().sum();
        let vec: Vec<f64> = if total == 0 {
            vec![0.0; self.config.buckets]
        } else {
            self.acc.iter().map(|&c| c as f64 / total as f64).collect()
        };
        for c in &mut self.acc {
            *c = 0;
        }

        let mut best: Option<(usize, f64)> = None;
        for (i, sig) in self.signatures.iter().enumerate() {
            let d = Self::distance(sig, &vec);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }

        let (phase, is_new, distance) = match best {
            Some((i, d)) if d <= self.config.distance_threshold => {
                // Signatures are frozen at first sight: updating them (e.g.
                // by exponential smoothing) lets a signature drift toward a
                // blend of several behaviors until everything matches it.
                (PhaseId(i as u32), false, d)
            }
            _ => {
                self.signatures.push(vec);
                (PhaseId(self.signatures.len() as u32 - 1), true, 0.0)
            }
        };

        let continues_previous = self.last_phase == Some(phase);
        self.last_phase = Some(phase);
        self.history.push(phase);
        IntervalOutcome {
            phase,
            is_new,
            continues_previous,
            distance,
        }
    }

    /// Number of distinct phases seen so far.
    pub fn phase_count(&self) -> usize {
        self.signatures.len()
    }

    /// The full per-interval phase sequence.
    pub fn history(&self) -> &[PhaseId] {
        &self.history
    }

    /// Figure 1 statistics: how many intervals belong to runs of ≥ 2
    /// consecutive same-phase intervals (*stable*) versus singleton runs
    /// (*transitional*).
    pub fn stability(&self) -> StabilityStats {
        let mut stats = StabilityStats::default();
        let h = &self.history;
        let mut i = 0;
        while i < h.len() {
            let mut j = i + 1;
            while j < h.len() && h[j] == h[i] {
                j += 1;
            }
            let run = j - i;
            if run >= 2 {
                stats.stable_intervals += run as u64;
                stats.stable_runs += 1;
            } else {
                stats.transitional_intervals += 1;
            }
            i = j;
        }
        stats.total_intervals = h.len() as u64;
        stats
    }
}

/// Stable/transitional interval distribution (Figure 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilityStats {
    /// Intervals in runs of length ≥ 2.
    pub stable_intervals: u64,
    /// Intervals in singleton runs.
    pub transitional_intervals: u64,
    /// Number of stable runs.
    pub stable_runs: u64,
    /// All intervals.
    pub total_intervals: u64,
}

impl StabilityStats {
    /// Fraction of intervals in stable phases (0.0 when empty).
    pub fn stable_fraction(&self) -> f64 {
        if self.total_intervals == 0 {
            0.0
        } else {
            self.stable_intervals as f64 / self.total_intervals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut BbvDetector, pcs: &[u64]) {
        for &pc in pcs {
            d.note_branch(pc, 50);
        }
    }

    #[test]
    fn identical_intervals_same_phase() {
        let mut d = BbvDetector::new(BbvConfig::default());
        let pcs: Vec<u64> = (0..20).map(|i| 0x1000 + i * 4).collect();
        feed(&mut d, &pcs);
        let a = d.end_interval();
        feed(&mut d, &pcs);
        let b = d.end_interval();
        assert_eq!(a.phase, b.phase);
        assert!(a.is_new && !b.is_new);
        assert!(b.continues_previous);
        assert_eq!(d.phase_count(), 1);
    }

    #[test]
    fn disjoint_behavior_new_phase() {
        let mut d = BbvDetector::new(BbvConfig::default());
        feed(&mut d, &[0x1000, 0x1004, 0x1008]);
        let a = d.end_interval();
        feed(&mut d, &[0x2040, 0x2044, 0x2048]);
        let b = d.end_interval();
        assert_ne!(a.phase, b.phase);
        assert!(b.is_new);
        assert!(!b.continues_previous);
    }

    #[test]
    fn recurring_phase_recognized() {
        let mut d = BbvDetector::new(BbvConfig::default());
        let x: Vec<u64> = (0..10).map(|i| 0x1000 + i * 4).collect();
        let y: Vec<u64> = (0..10).map(|i| 0x2040 + i * 4).collect();
        feed(&mut d, &x);
        let a = d.end_interval();
        feed(&mut d, &y);
        let _ = d.end_interval();
        feed(&mut d, &x);
        let c = d.end_interval();
        assert_eq!(a.phase, c.phase, "recurrence maps to the stored signature");
        assert!(!c.is_new);
        assert_eq!(d.phase_count(), 2);
    }

    #[test]
    fn small_perturbations_tolerated() {
        let mut d = BbvDetector::new(BbvConfig::default());
        let pcs: Vec<u64> = (0..30).map(|i| 0x1000 + i * 4).collect();
        feed(&mut d, &pcs);
        let a = d.end_interval();
        // Same mix plus a little noise.
        feed(&mut d, &pcs);
        d.note_branch(0x9000, 50);
        let b = d.end_interval();
        assert_eq!(a.phase, b.phase, "5% perturbation stays within threshold");
    }

    #[test]
    fn stability_statistics() {
        let mut d = BbvDetector::new(BbvConfig::default());
        let x: Vec<u64> = (0..10).map(|i| 0x1000 + i * 4).collect();
        let y: Vec<u64> = (0..10).map(|i| 0x2040 + i * 4).collect();
        // Pattern: X X X Y X X -> runs [3, 1, 2]: 5 stable, 1 transitional.
        for pcs in [&x, &x, &x, &y, &x, &x] {
            feed(&mut d, pcs);
            d.end_interval();
        }
        let s = d.stability();
        assert_eq!(s.total_intervals, 6);
        assert_eq!(s.stable_intervals, 5);
        assert_eq!(s.transitional_intervals, 1);
        assert_eq!(s.stable_runs, 2);
        assert!((s.stable_fraction() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_classified() {
        let mut d = BbvDetector::new(BbvConfig::default());
        let a = d.end_interval();
        assert!(a.is_new);
        let b = d.end_interval();
        assert_eq!(a.phase, b.phase, "two empty intervals match");
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = BbvDetector::new(BbvConfig {
            distance_threshold: 0.0,
            ..BbvConfig::default()
        });
    }

    #[test]
    fn distance_is_weight_sensitive() {
        // Same PCs, very different weights -> different phase.
        let mut d = BbvDetector::new(BbvConfig::default());
        for _ in 0..100 {
            d.note_branch(0x1000, 50);
        }
        d.note_branch(0x2040, 50);
        let a = d.end_interval();
        d.note_branch(0x1000, 50);
        for _ in 0..100 {
            d.note_branch(0x2040, 50);
        }
        let b = d.end_interval();
        assert_ne!(a.phase, b.phase);
    }
}
