//! Working-set-signature phase detection (Dhodapkar & Smith, ISCA 2002).
//!
//! An alternative temporal detector used for ablations: each sampling
//! interval collects a lossy bit-vector signature of the memory lines (or
//! code lines) touched; the *relative signature distance*
//! `|A Δ B| / |A ∪ B|` between consecutive intervals detects phase changes.
//! The paper's tuning algorithm is taken from this work; the detector
//! itself lost to BBV in Dhodapkar & Smith's own comparison (MICRO 2003),
//! which is why the paper's headline baseline is BBV.

use serde::{Deserialize, Serialize};

/// Working-set detector configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkingSetConfig {
    /// Signature size in bits (power of two; the original uses 1024).
    pub signature_bits: usize,
    /// Granularity of a working-set element in bytes (cache-line sized).
    pub granule_bytes: u64,
    /// Relative distance above which consecutive intervals are different
    /// phases (the original uses 0.5).
    pub delta_threshold: f64,
}

impl Default for WorkingSetConfig {
    fn default() -> Self {
        WorkingSetConfig {
            signature_bits: 1024,
            granule_bytes: 64,
            delta_threshold: 0.5,
        }
    }
}

/// A working-set signature: a lossy hashed bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    bits: Vec<u64>,
}

impl Signature {
    fn new(nbits: usize) -> Signature {
        Signature {
            bits: vec![0; nbits / 64],
        }
    }

    fn set(&mut self, hash: u64) {
        let nbits = self.bits.len() * 64;
        let b = (hash as usize) % nbits;
        self.bits[b / 64] |= 1 << (b % 64);
    }

    fn clear(&mut self) {
        for w in &mut self.bits {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn population(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Relative signature distance `|A Δ B| / |A ∪ B|` in `[0, 1]`.
    pub fn distance(&self, other: &Signature) -> f64 {
        let mut sym = 0u32;
        let mut uni = 0u32;
        for (a, b) in self.bits.iter().zip(&other.bits) {
            sym += (a ^ b).count_ones();
            uni += (a | b).count_ones();
        }
        if uni == 0 {
            0.0
        } else {
            sym as f64 / uni as f64
        }
    }
}

/// Outcome of closing one working-set interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WsOutcome {
    /// `true` when the interval's working set matches the previous one.
    pub same_phase: bool,
    /// Relative distance to the previous interval's signature.
    pub distance: f64,
    /// Set bits in this interval's signature (working-set size proxy).
    pub population: u32,
}

/// The working-set phase detector.
///
/// # Examples
///
/// ```
/// use ace_phase::{WorkingSetDetector, WorkingSetConfig};
/// let mut d = WorkingSetDetector::new(WorkingSetConfig::default());
/// for a in (0..8192u64).step_by(64) { d.note_access(a); }
/// let _ = d.end_interval();
/// for a in (0..8192u64).step_by(64) { d.note_access(a); }
/// let out = d.end_interval();
/// assert!(out.same_phase);
/// ```
#[derive(Debug, Clone)]
pub struct WorkingSetDetector {
    config: WorkingSetConfig,
    current: Signature,
    previous: Option<Signature>,
}

impl WorkingSetDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `signature_bits` is not a positive multiple of 64 or the
    /// granule is not a power of two.
    pub fn new(config: WorkingSetConfig) -> WorkingSetDetector {
        assert!(
            config.signature_bits >= 64 && config.signature_bits.is_multiple_of(64),
            "signature bits must be a positive multiple of 64"
        );
        assert!(
            config.granule_bytes.is_power_of_two(),
            "granule must be a power of two"
        );
        WorkingSetDetector {
            current: Signature::new(config.signature_bits),
            previous: None,
            config,
        }
    }

    /// Records one memory reference.
    #[inline]
    pub fn note_access(&mut self, addr: u64) {
        let granule = addr / self.config.granule_bytes;
        // Fibonacci hash spreads granule numbers over the signature.
        let hash = granule.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        self.current.set(hash);
    }

    /// Closes the interval, comparing against the previous one.
    pub fn end_interval(&mut self) -> WsOutcome {
        let population = self.current.population();
        let (same_phase, distance) = match &self.previous {
            Some(prev) => {
                let d = prev.distance(&self.current);
                (d <= self.config.delta_threshold, d)
            }
            None => (false, 1.0),
        };
        let mut finished = Signature::new(self.config.signature_bits);
        std::mem::swap(&mut finished, &mut self.current);
        self.previous = Some(finished);
        self.current.clear();
        WsOutcome {
            same_phase,
            distance,
            population,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_working_set_matches() {
        let mut d = WorkingSetDetector::new(WorkingSetConfig::default());
        for a in (0..65536u64).step_by(64) {
            d.note_access(a);
        }
        let first = d.end_interval();
        assert!(!first.same_phase, "nothing to compare against yet");
        for a in (0..65536u64).step_by(64) {
            d.note_access(a);
        }
        let second = d.end_interval();
        assert!(second.same_phase);
        assert!(second.distance < 0.01);
    }

    #[test]
    fn disjoint_working_sets_differ() {
        // Working sets well below signature saturation (256 granules into
        // 1024 bits) so disjoint sets really map to disjoint bits.
        let mut d = WorkingSetDetector::new(WorkingSetConfig::default());
        for a in (0..16384u64).step_by(64) {
            d.note_access(a);
        }
        d.end_interval();
        for a in (0x100_0000..0x100_4000u64).step_by(64) {
            d.note_access(a);
        }
        let out = d.end_interval();
        assert!(!out.same_phase);
        assert!(out.distance > 0.7, "distance {}", out.distance);
    }

    #[test]
    fn population_tracks_set_size() {
        let mut d = WorkingSetDetector::new(WorkingSetConfig::default());
        for a in (0..4096u64).step_by(64) {
            d.note_access(a);
        }
        let small = d.end_interval().population;
        for a in (0..262144u64).step_by(64) {
            d.note_access(a);
        }
        let large = d.end_interval().population;
        assert!(
            large > small * 4,
            "larger set, more bits: {small} vs {large}"
        );
    }

    #[test]
    fn same_line_single_granule() {
        let mut d = WorkingSetDetector::new(WorkingSetConfig::default());
        d.note_access(0x100);
        d.note_access(0x13f);
        assert_eq!(d.end_interval().population, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn rejects_bad_bits() {
        let _ = WorkingSetDetector::new(WorkingSetConfig {
            signature_bits: 100,
            ..WorkingSetConfig::default()
        });
    }
}
