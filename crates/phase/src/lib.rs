//! # ace-phase — program phase detectors
//!
//! The phase-detection baselines the paper compares its DO-based scheme
//! against, plus one ablation detector:
//!
//! * [`BbvDetector`] — Basic Block Vectors (Sherwood et al.), "one of the
//!   best" temporal detectors and the paper's headline baseline: branch-PC
//!   accumulator buckets, Manhattan-distance signature matching, unlimited
//!   signature storage, stable/transitional classification (Figure 1).
//! * [`WorkingSetDetector`] — working-set signatures (Dhodapkar & Smith),
//!   whose tuning algorithm the paper reuses.
//! * [`BranchCounterDetector`] — the conditional-branch-counter detector
//!   of Balasubramonian et al. (the paper's reference \\[6\\]), the simplest
//!   temporal scheme.
//! * [`PositionalDetector`] — large-procedure positional adaptation
//!   (Huang et al.), the non-DO positional ancestor of the paper's scheme.
//! * [`PhasePredictor`] — the RLE-Markov next-phase predictor the paper's
//!   BBV baseline deliberately omits (Section 4.1), provided for the
//!   prediction ablation.
//!
//! All detectors are pure observers: feed them branches/accesses/exits and
//! read classifications; the ACE managers in `ace-core` own the policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbv;
mod branch_counter;
mod positional;
mod predictor;
mod working_set;

pub use bbv::{BbvConfig, BbvDetector, IntervalOutcome, PhaseId, StabilityStats};
pub use branch_counter::{BranchCounterConfig, BranchCounterDetector, BranchCounterOutcome};
pub use positional::{PositionalConfig, PositionalDetector};
pub use predictor::{PhasePredictor, PredictorStats};
pub use working_set::{Signature, WorkingSetConfig, WorkingSetDetector, WsOutcome};
