//! Next-phase prediction (Sherwood, Sair & Calder's run-length-encoded
//! Markov predictor, ISCA 2003).
//!
//! The paper deliberately leaves this out of its BBV baseline ("this BBV
//! implementation does not contain a next phase predictor") while noting
//! that accurate prediction could reduce the recurring-phase
//! identification latency — at the risk of wrong adaptations on
//! mispredictions. This module provides the predictor so the ablation
//! benches can quantify that trade-off.
//!
//! The predictor learns transitions keyed by *(current phase, run length)*:
//! "after phase 3 has run for 5 intervals, phase 0 usually follows". Run
//! lengths are bucketed logarithmically, as in the original hardware
//! proposal's compressed tags.

use crate::bbv::PhaseId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Buckets a run length logarithmically (1, 2, 3-4, 5-8, 9-16, …).
fn bucket(run: u32) -> u32 {
    32 - run.max(1).leading_zeros()
}

/// Per-key transition counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct TransitionCounts {
    counts: HashMap<PhaseId, u64>,
}

impl TransitionCounts {
    fn note(&mut self, next: PhaseId) {
        *self.counts.entry(next).or_insert(0) += 1;
    }

    fn best(&self) -> Option<(PhaseId, u64, u64)> {
        let total: u64 = self.counts.values().sum();
        self.counts
            .iter()
            .max_by_key(|(p, c)| (**c, std::cmp::Reverse(p.0)))
            .map(|(p, c)| (*p, *c, total))
    }
}

/// Statistics of the predictor's own accuracy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Predictions issued (confident ones only).
    pub predictions: u64,
    /// Predictions that matched the next interval's phase.
    pub correct: u64,
}

impl PredictorStats {
    /// Fraction of confident predictions that were right.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// A run-length-encoded Markov next-phase predictor.
///
/// Feed every classified interval via [`PhasePredictor::observe`]; ask for
/// the next interval's phase with [`PhasePredictor::predict`].
///
/// # Examples
///
/// ```
/// use ace_phase::{PhasePredictor, PhaseId};
/// let mut p = PhasePredictor::new(0.6);
/// // Learn an A A B A A B ... pattern.
/// for _ in 0..8 {
///     p.observe(PhaseId(0));
///     p.observe(PhaseId(0));
///     p.observe(PhaseId(1));
/// }
/// p.observe(PhaseId(0));
/// p.observe(PhaseId(0));
/// assert_eq!(p.predict(), Some(PhaseId(1)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhasePredictor {
    /// (phase, run-length bucket) → next-phase counts.
    table: HashMap<(PhaseId, u32), TransitionCounts>,
    current: Option<PhaseId>,
    run_length: u32,
    /// Minimum fraction of past observations agreeing before a prediction
    /// is issued (low-confidence entries predict "same phase continues").
    confidence: f64,
    stats: PredictorStats,
    /// The prediction issued for the upcoming interval, for accuracy
    /// accounting.
    outstanding: Option<PhaseId>,
}

impl PhasePredictor {
    /// Creates a predictor issuing predictions only when at least
    /// `confidence` of prior observations agree.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not within `(0, 1]`.
    pub fn new(confidence: f64) -> PhasePredictor {
        assert!(confidence > 0.0 && confidence <= 1.0, "confidence in (0,1]");
        PhasePredictor {
            confidence,
            ..PhasePredictor::default()
        }
    }

    /// Accuracy statistics.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Records the phase the just-finished interval was classified into.
    pub fn observe(&mut self, phase: PhaseId) {
        if let Some(predicted) = self.outstanding.take() {
            self.stats.predictions += 1;
            if predicted == phase {
                self.stats.correct += 1;
            }
        }
        match self.current {
            Some(cur) if cur == phase => {
                self.run_length = self.run_length.saturating_add(1);
            }
            Some(cur) => {
                // Phase change: learn the transition at the closed run's
                // length, then start the new run.
                self.table
                    .entry((cur, bucket(self.run_length)))
                    .or_default()
                    .note(phase);
                self.current = Some(phase);
                self.run_length = 1;
            }
            None => {
                self.current = Some(phase);
                self.run_length = 1;
            }
        }
    }

    /// Predicts the next interval's phase, or `None` when the history is
    /// insufficient or below the confidence bar (callers should then assume
    /// the current phase continues — the stability heuristic).
    pub fn predict(&mut self) -> Option<PhaseId> {
        let cur = self.current?;
        let entry = self.table.get(&(cur, bucket(self.run_length)))?;
        let (candidate, votes, total) = entry.best()?;
        if votes as f64 >= self.confidence * total as f64 && total >= 2 {
            self.outstanding = Some(candidate);
            Some(candidate)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_periodic_pattern() {
        let mut p = PhasePredictor::new(0.6);
        for _ in 0..10 {
            for id in [0u32, 0, 0, 1, 1] {
                p.observe(PhaseId(id));
            }
        }
        // After three intervals of phase 0, phase 1 follows.
        p.observe(PhaseId(0));
        p.observe(PhaseId(0));
        p.observe(PhaseId(0));
        assert_eq!(p.predict(), Some(PhaseId(1)));
        // After one interval of phase 1, another phase-1 interval... the
        // run continues, so no transition is learned mid-run; prediction at
        // run length 1 of phase 1 says phase... the only transition seen
        // from (1, len>=2) is to 0.
        p.observe(PhaseId(1));
        p.observe(PhaseId(1));
        assert_eq!(p.predict(), Some(PhaseId(0)));
    }

    #[test]
    fn no_prediction_without_history() {
        let mut p = PhasePredictor::new(0.6);
        assert_eq!(p.predict(), None);
        p.observe(PhaseId(3));
        assert_eq!(p.predict(), None, "no transition from phase 3 seen yet");
    }

    #[test]
    fn low_confidence_suppresses_prediction() {
        let mut p = PhasePredictor::new(0.9);
        // Transitions from phase 0 split ~50/50 between 1 and 2.
        for i in 0..20 {
            p.observe(PhaseId(0));
            p.observe(PhaseId(1 + (i % 2)));
        }
        p.observe(PhaseId(0));
        assert_eq!(p.predict(), None, "50% agreement < 90% confidence");
    }

    #[test]
    fn accuracy_accounting() {
        let mut p = PhasePredictor::new(0.5);
        for _ in 0..6 {
            p.observe(PhaseId(0));
            p.observe(PhaseId(1));
        }
        // On a strict alternation every prediction is issuable and right.
        for i in 0..6u32 {
            let pred = p.predict();
            assert!(pred.is_some(), "iteration {i}");
            p.observe(pred.unwrap());
        }
        assert_eq!(p.stats().predictions, 6);
        assert!((p.stats().accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_length_buckets() {
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(8), 4);
        assert_eq!(bucket(16), 5);
    }
}
